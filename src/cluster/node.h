// noble::cluster node agent — one fleet node: a local fleet::Router wrapped
// in the cluster's routing surface, plus the node's half of every cluster
// conversation.
//
//   gateway ── fleet::Routing ──▶ NodeAgent ──▶ local Router (shards, engines)
//                                   │  │
//          bulk kQueueFull ─ spill ─┘  ├── FrameServer :port  (peer spill,
//                                      │        coordinator rollout commands)
//                                      └── heartbeat thread ──▶ coordinator
//                                               ◀── kMembership (peer table)
//
// The agent implements fleet::Routing so a gateway Listener (or any other
// front end written against the routing interface) serves a multi-node
// fleet without knowing it: submit() first tries the local router, and only
// when a *bulk* submission comes back kQueueFull does it forward the scan
// to the least-loaded alive peer whose shard reports the same artifact
// digest — cross-node spill extends the router's own least-depth bulk
// spill one level up, and the digest guard keeps the answer bit-identical
// to what the local shard would have produced. Interactive traffic never
// spills across nodes (a network hop is exactly the latency an interactive
// deadline cannot afford).
//
// Inbound, the agent's FrameServer serves two conversations over the shared
// net transport: kSpillSubmit from peers (served strictly locally — a
// spilled request never re-spills, so an overloaded fleet degrades to
// explicit kQueueFull instead of a forwarding storm) and kRolloutCommand
// from the coordinator (load the artifact, verify its digest, hot_swap).
#ifndef NOBLE_CLUSTER_NODE_H_
#define NOBLE_CLUSTER_NODE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/proto.h"
#include "fleet/router.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace noble::cluster {

struct NodeConfig {
  /// Fleet-unique node name (the peer-table key). Must be non-empty.
  std::string name = "node";
  /// Host peers use to reach this node's cluster server.
  std::string advertise_host = "127.0.0.1";
  /// Coordinator endpoint for hello/heartbeat. Port 0 disables the
  /// heartbeat thread (standalone node: no membership, no spill targets).
  std::string coordinator_host = "127.0.0.1";
  std::uint16_t coordinator_port = 0;
  /// The node's own cluster FrameServer (spill + rollout traffic).
  net::ServerConfig server;
  /// Heartbeat cadence. Each beat also refreshes the peer table from the
  /// coordinator's kMembership reply.
  std::uint64_t heartbeat_ms = 200;
  /// Master switch for cross-node bulk spill (off = plain local router
  /// with heartbeats, useful for canary-only members).
  bool spill_enabled = true;
};

/// Node-side cluster counters (monotonic; exposed via splice_metrics).
struct NodeCounters {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t membership_updates = 0;
  std::uint64_t spill_forwarded = 0;  ///< bulk submissions sent to a peer
  std::uint64_t spill_completed = 0;  ///< forwarded and answered kOk
  std::uint64_t spill_failed = 0;     ///< forwarded, then rejected/peer lost
  std::uint64_t spill_served = 0;     ///< peer requests served locally
  std::uint64_t spill_refused = 0;    ///< peer requests refused (digest/shard)
  std::uint64_t rollouts_applied = 0;
  std::uint64_t rollouts_refused = 0;
  std::uint64_t protocol_errors = 0;  ///< malformed bodies from peers
};

class NodeAgent final : public fleet::Routing, private net::FrameHandler {
 public:
  /// The router must outlive the agent. Construction is passive; start()
  /// binds the server and begins heartbeating.
  explicit NodeAgent(fleet::Router& router, NodeConfig config = {});
  ~NodeAgent() override;

  NodeAgent(const NodeAgent&) = delete;
  NodeAgent& operator=(const NodeAgent&) = delete;

  bool start();
  void stop();
  bool running() const { return server_.running(); }
  /// Actual cluster-server port (resolves port 0 after start()).
  std::uint16_t port() const { return server_.port(); }
  const NodeConfig& config() const { return config_; }

  // --- fleet::Routing --------------------------------------------------------
  engine::Submission submit(std::string_view shard_key, const serve::RssiVector& rssi,
                            const engine::SubmitOptions& options = {}) override;
  std::optional<fleet::FleetSession> open_session(std::string_view shard_key,
                                                  const geo::Point2& start) override;
  engine::Submission track(const fleet::FleetSession& session, serve::ImuSegment segment,
                           const engine::SubmitOptions& options = {}) override;
  bool close_session(const fleet::FleetSession& session) override;
  bool has_shard(std::string_view shard_key) const override;
  fleet::FleetStats stats() const override;
  std::vector<fleet::ShardDepths> queue_depths() const override;
  void splice_metrics(obs::MetricsSnapshot& out) const override;

  NodeCounters counters() const;
  /// Latest membership view from the coordinator (self included).
  std::vector<proto::NodeInfo> peers() const;
  /// What this node would report in its next heartbeat.
  proto::NodeInfo self_info() const;

 private:
  /// One cached outbound spill connection to a peer: a full-duplex
  /// FrameSocket with a reader thread settling promises by request id —
  /// the pipelined-client shape, so N spilled scans share one socket.
  struct SpillPeer;

  // --- net::FrameHandler -----------------------------------------------------
  const net::MessageSet& message_set() const override { return proto::message_set(); }
  bool on_frame(net::ServerConn& conn, net::Frame frame, std::uint64_t recv_ns) override;
  bool on_service(net::ServerConn& conn) override;
  void on_close(net::ServerConn& conn) override;

  void heartbeat_loop();
  void apply_membership(std::vector<proto::NodeInfo> members);
  /// Picks the spill target for `shard_key`: alive, not self, same artifact
  /// digest, shallowest reported bulk depth. nullopt when no peer qualifies.
  std::optional<proto::NodeInfo> pick_spill_peer(std::string_view shard_key,
                                                 std::uint64_t digest) const;
  std::shared_ptr<SpillPeer> peer_conn(const proto::NodeInfo& peer);
  engine::Submission forward_spill(const proto::NodeInfo& peer, std::string_view shard_key,
                                   std::uint64_t digest, const serve::RssiVector& rssi,
                                   const engine::SubmitOptions& options);
  void serve_spill(net::ServerConn& conn, const net::Frame& frame);
  void serve_rollout(net::ServerConn& conn, const net::Frame& frame);

  fleet::Router& router_;
  NodeConfig config_;
  net::FrameServer server_;

  std::thread heartbeat_thread_;
  std::atomic<bool> hb_running_{false};
  mutable std::mutex hb_mu_;
  std::condition_variable hb_cv_;

  /// Guards the peer table and the spill-connection cache together: a
  /// membership update that marks a peer dead also drops its connection
  /// under the same lock, so spill never picks a peer whose conn is being
  /// torn down.
  mutable std::mutex peers_mu_;
  std::vector<proto::NodeInfo> peers_;
  std::map<std::string, std::shared_ptr<SpillPeer>> spill_conns_;  ///< by peer name

  obs::Counter heartbeats_sent_;
  obs::Counter membership_updates_;
  obs::Counter spill_forwarded_;
  obs::Counter spill_completed_;
  obs::Counter spill_failed_;
  obs::Counter spill_served_;
  obs::Counter spill_refused_;
  obs::Counter rollouts_applied_;
  obs::Counter rollouts_refused_;
  obs::Counter protocol_errors_;
};

}  // namespace noble::cluster

#endif  // NOBLE_CLUSTER_NODE_H_
