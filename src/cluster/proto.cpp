#include "cluster/proto.h"

#include "nn/serialize.h"

namespace noble::cluster::proto {

const net::MessageSet& message_set() {
  static const net::MessageSet set(
      "cluster",
      {{static_cast<std::uint32_t>(MsgType::kHello), "hello"},
       {static_cast<std::uint32_t>(MsgType::kHeartbeat), "heartbeat"},
       {static_cast<std::uint32_t>(MsgType::kRolloutStatus), "rollout_status"},
       {static_cast<std::uint32_t>(MsgType::kMembership), "membership"},
       {static_cast<std::uint32_t>(MsgType::kRolloutCommand), "rollout_command"},
       {static_cast<std::uint32_t>(MsgType::kSpillSubmit), "spill_submit"},
       {static_cast<std::uint32_t>(MsgType::kSpillResult), "spill_result"},
       {static_cast<std::uint32_t>(MsgType::kError), "error"}});
  return set;
}

const char* rollout_stage_name(RolloutStage stage) {
  switch (stage) {
    case RolloutStage::kCanary: return "canary";
    case RolloutStage::kCommit: return "commit";
  }
  return "unknown";
}

namespace {

void write_shard_state(nn::ByteWriter& w, const ShardState& shard) {
  w.str(shard.key);
  w.u64(shard.digest);
  w.u64(shard.generation);
  w.u64(shard.bulk_depth);
  w.u64(shard.total_depth);
}

bool read_shard_state(nn::ByteReader& r, ShardState& shard) {
  return r.str(shard.key) && r.u64(shard.digest) && r.u64(shard.generation) &&
         r.u64(shard.bulk_depth) && r.u64(shard.total_depth);
}

void write_node_info(nn::ByteWriter& w, const NodeInfo& info) {
  w.str(info.name);
  w.str(info.host);
  w.u32(info.port);
  w.u8(info.alive ? 1 : 0);
  w.u64(info.shards.size());
  for (const ShardState& shard : info.shards) write_shard_state(w, shard);
}

bool read_node_info(nn::ByteReader& r, NodeInfo& info) {
  std::uint32_t port = 0;
  std::uint8_t alive = 0;
  std::uint64_t num_shards = 0;
  if (!r.str(info.name) || !r.str(info.host) || !r.u32(port) || !r.u8(alive) ||
      !r.u64(num_shards)) {
    return false;
  }
  // Defensive bound: the frame is already capped at max_frame_bytes, but a
  // lying count must not drive a giant reserve before the reads fail.
  if (port > 0xFFFFu || num_shards > 4096) return false;
  info.port = static_cast<std::uint16_t>(port);
  info.alive = alive != 0;
  info.shards.clear();
  info.shards.reserve(num_shards);
  for (std::uint64_t i = 0; i < num_shards; ++i) {
    ShardState shard;
    if (!read_shard_state(r, shard)) return false;
    info.shards.push_back(std::move(shard));
  }
  return true;
}

}  // namespace

std::string encode_node_info_body(const NodeInfo& info) {
  nn::ByteWriter w;
  write_node_info(w, info);
  return w.take();
}

bool decode_node_info_body(std::string_view body, NodeInfo& info) {
  nn::ByteReader r(body);
  return read_node_info(r, info) && r.exhausted();
}

std::string encode_membership_body(const std::vector<NodeInfo>& members) {
  nn::ByteWriter w;
  w.u64(members.size());
  for (const NodeInfo& member : members) write_node_info(w, member);
  return w.take();
}

bool decode_membership_body(std::string_view body, std::vector<NodeInfo>& members) {
  nn::ByteReader r(body);
  std::uint64_t count = 0;
  if (!r.u64(count) || count > 4096) return false;
  members.clear();
  members.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    NodeInfo info;
    if (!read_node_info(r, info)) return false;
    members.push_back(std::move(info));
  }
  return r.exhausted();
}

std::string encode_spill_submit_body(std::string_view shard_key, std::uint64_t digest,
                                     const serve::RssiVector& rssi) {
  nn::ByteWriter w;
  w.str(shard_key);
  w.u64(digest);
  w.f32v(rssi);
  return w.take();
}

bool decode_spill_submit_body(std::string_view body, std::string& shard_key,
                              std::uint64_t& digest, serve::RssiVector& rssi) {
  nn::ByteReader r(body);
  return r.str(shard_key) && r.u64(digest) && r.f32v(rssi) && r.exhausted();
}

std::string encode_rollout_command_body(const RolloutCommand& cmd) {
  nn::ByteWriter w;
  w.str(cmd.shard);
  w.str(cmd.artifact_path);
  w.u64(cmd.digest);
  w.u32(static_cast<std::uint32_t>(cmd.stage));
  return w.take();
}

bool decode_rollout_command_body(std::string_view body, RolloutCommand& cmd) {
  nn::ByteReader r(body);
  std::uint32_t stage = 0;
  if (!r.str(cmd.shard) || !r.str(cmd.artifact_path) || !r.u64(cmd.digest) ||
      !r.u32(stage) || !r.exhausted()) {
    return false;
  }
  if (stage > static_cast<std::uint32_t>(RolloutStage::kCommit)) return false;
  cmd.stage = static_cast<RolloutStage>(stage);
  return true;
}

std::string encode_rollout_report_body(const RolloutReport& report) {
  nn::ByteWriter w;
  w.str(report.shard);
  w.u64(report.digest);
  w.u32(static_cast<std::uint32_t>(report.stage));
  w.u32(report.status);
  w.str(report.message);
  return w.take();
}

bool decode_rollout_report_body(std::string_view body, RolloutReport& report) {
  nn::ByteReader r(body);
  std::uint32_t stage = 0;
  if (!r.str(report.shard) || !r.u64(report.digest) || !r.u32(stage) ||
      !r.u32(report.status) || !r.str(report.message) || !r.exhausted()) {
    return false;
  }
  if (stage > static_cast<std::uint32_t>(RolloutStage::kCommit)) return false;
  report.stage = static_cast<RolloutStage>(stage);
  return true;
}

}  // namespace noble::cluster::proto
