// noble::cluster wire protocol — the inter-node vocabulary over the shared
// noble::net frame codec.
//
// Three conversations share one MessageSet (every cluster socket can speak
// all of them):
//
//   node -> coordinator   kHello      join: who am I, where do I serve
//                         kHeartbeat  periodic: per-shard digest/generation
//                                     + queue depths
//                         <- kMembership  the coordinator's world view
//   coordinator -> node   kRolloutCommand  load artifact, hot_swap (staged)
//                         <- kRolloutStatus  applied / refused + digest
//   node -> node          kSpillSubmit  forward one bulk scan to a peer
//                         <- kSpillResult  status + fix (wire fix body —
//                                          bit-identical payload)
//
// The spill conversation is also how the coordinator probes a canary: a
// kSpillSubmit with the expected digest asks "serve this on the artifact I
// think you have", and the digest guard turns a stale peer into a clean
// kWrongArtifact instead of a silently different fix.
//
// Everything rides net::Frame: same framing, same defensive-decode
// contract, same kError(105) escape hatch the gateway protocol uses —
// that is the point of the shared transport.
#ifndef NOBLE_CLUSTER_PROTO_H_
#define NOBLE_CLUSTER_PROTO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.h"
#include "serve/fix.h"

namespace noble::cluster::proto {

enum class MsgType : std::uint32_t {
  // Node -> coordinator.
  kHello = 201,          ///< join the fleet (NodeInfo)
  kHeartbeat = 202,      ///< periodic liveness + per-shard state (NodeInfo)
  kRolloutStatus = 203,  ///< outcome of a kRolloutCommand
  // Coordinator -> node.
  kMembership = 211,      ///< current member table (reply to hello/heartbeat)
  kRolloutCommand = 212,  ///< load an artifact and hot_swap a shard
  // Node -> node (and coordinator -> node canary probes).
  kSpillSubmit = 221,  ///< one spilled/probe scan (shard, digest, rssi)
  kSpillResult = 222,  ///< status + fix, wire fix-body payload
  kError = net::kErrorType,  ///< protocol violation; connection closes after
};

/// The cluster protocol's message registry.
const net::MessageSet& message_set();

/// One shard as a node reports it: identity (digest + generation) plus the
/// load signal cross-node spill routes on.
struct ShardState {
  std::string key;
  std::uint64_t digest = 0;
  std::uint64_t generation = 0;
  std::uint64_t bulk_depth = 0;   ///< bulk-lane entries across the engines
  std::uint64_t total_depth = 0;  ///< both classes
};

/// One member node: identity, where peers reach its cluster port, and what
/// it serves. `alive` is meaningful only in kMembership frames (the
/// coordinator's verdict); hello/heartbeat senders leave it true.
struct NodeInfo {
  std::string name;
  std::string host;
  std::uint16_t port = 0;  ///< the node's own cluster FrameServer
  bool alive = true;
  std::vector<ShardState> shards;
};

enum class RolloutStage : std::uint32_t {
  kCanary = 0,  ///< first node only; verify before touching the rest
  kCommit = 1,  ///< the verified artifact, fleet-wide
};

const char* rollout_stage_name(RolloutStage stage);

/// Coordinator -> node: load `artifact_path`, verify its digest matches,
/// hot_swap `shard` onto it.
struct RolloutCommand {
  std::string shard;
  std::string artifact_path;
  std::uint64_t digest = 0;  ///< expected digest of the loaded artifact
  RolloutStage stage = RolloutStage::kCanary;
};

/// Node -> coordinator: what happened. `status` is a wire::Status raw value
/// (kOk = applied); `digest` is what the shard serves after the attempt.
struct RolloutReport {
  std::string shard;
  std::uint64_t digest = 0;
  RolloutStage stage = RolloutStage::kCanary;
  std::uint32_t status = 0;
  std::string message;
};

// --- bodies ------------------------------------------------------------------

/// kHello and kHeartbeat carry the same payload: the sender's NodeInfo.
std::string encode_node_info_body(const NodeInfo& info);
bool decode_node_info_body(std::string_view body, NodeInfo& info);

/// kMembership: the coordinator's member table.
std::string encode_membership_body(const std::vector<NodeInfo>& members);
bool decode_membership_body(std::string_view body, std::vector<NodeInfo>& members);

/// kSpillSubmit: one scan for `shard_key`, valid only against `digest`.
std::string encode_spill_submit_body(std::string_view shard_key, std::uint64_t digest,
                                     const serve::RssiVector& rssi);
bool decode_spill_submit_body(std::string_view body, std::string& shard_key,
                              std::uint64_t& digest, serve::RssiVector& rssi);

// kSpillResult reuses the gateway fix body (wire::encode_fix_body /
// wire::decode_fix_body): the status+fix payload is already exact-bit and
// sharing it keeps spill results comparable to gateway fixes in tests.

std::string encode_rollout_command_body(const RolloutCommand& cmd);
bool decode_rollout_command_body(std::string_view body, RolloutCommand& cmd);

std::string encode_rollout_report_body(const RolloutReport& report);
bool decode_rollout_report_body(std::string_view body, RolloutReport& report);

}  // namespace noble::cluster::proto

#endif  // NOBLE_CLUSTER_PROTO_H_
