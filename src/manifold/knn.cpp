#include "manifold/knn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "linalg/distance.h"

namespace noble::manifold {

namespace {

std::vector<Neighbor> select_k(const float* dist_row, std::size_t n, std::size_t k,
                               bool exclude_self, std::size_t self_index) {
  std::vector<Neighbor> all;
  all.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    if (exclude_self && j == self_index) continue;
    all.push_back({j, std::sqrt(static_cast<double>(dist_row[j]))});
  }
  const std::size_t kk = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(kk), all.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.distance < b.distance ||
                             (a.distance == b.distance && a.index < b.index);
                    });
  all.resize(kk);
  return all;
}

}  // namespace

std::vector<std::vector<Neighbor>> knn_search(const linalg::Mat& refs,
                                              const linalg::Mat& queries, std::size_t k,
                                              bool exclude_self) {
  NOBLE_EXPECTS(refs.cols() == queries.cols());
  NOBLE_EXPECTS(k >= 1);
  // Chunk queries so the distance matrix stays cache/memory friendly.
  const std::size_t chunk = 512;
  std::vector<std::vector<Neighbor>> out(queries.rows());
  linalg::Mat d;
  for (std::size_t start = 0; start < queries.rows(); start += chunk) {
    const std::size_t end = std::min(queries.rows(), start + chunk);
    linalg::Mat q(end - start, queries.cols());
    for (std::size_t i = start; i < end; ++i) {
      const float* src = queries.row(i);
      float* dst = q.row(i - start);
      std::copy(src, src + queries.cols(), dst);
    }
    linalg::pairwise_sq_dist(q, refs, d);
    for (std::size_t i = start; i < end; ++i) {
      out[i] = select_k(d.row(i - start), refs.rows(), k, exclude_self, i);
    }
  }
  return out;
}

std::vector<Neighbor> knn_query(const linalg::Mat& refs, const float* query,
                                std::size_t k) {
  NOBLE_EXPECTS(k >= 1);
  std::vector<float> dist(refs.rows());
  for (std::size_t j = 0; j < refs.rows(); ++j) {
    dist[j] = static_cast<float>(linalg::sq_dist(refs.row(j), query, refs.cols()));
  }
  return select_k(dist.data(), refs.rows(), k, /*exclude_self=*/false, 0);
}

}  // namespace noble::manifold
