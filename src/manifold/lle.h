// Locally linear embedding (Roweis & Saul, Science 2000): reconstruct each
// point from its k neighbors, then find the low-dimensional coordinates that
// preserve those reconstruction weights (bottom eigenvectors of
// M = (I - W)^T (I - W), skipping the constant vector).
#ifndef NOBLE_MANIFOLD_LLE_H_
#define NOBLE_MANIFOLD_LLE_H_

#include <cstdint>

#include "manifold/embedding.h"
#include "manifold/knn.h"

namespace noble::manifold {

/// LLE embedder; out-of-sample queries are embedded with freshly computed
/// reconstruction weights over their nearest training neighbors (the
/// standard Saul & Roweis extension).
class Lle : public Embedder {
 public:
  /// `dim`: embedding dimensionality; `k`: neighborhood size;
  /// `reg`: Gram-matrix regularization (scaled by the trace).
  Lle(std::size_t dim, std::size_t k, double reg = 1e-3, std::uint64_t seed = 19);

  void fit(const linalg::Mat& x) override;
  linalg::Mat transform(const linalg::Mat& queries) const override;
  const linalg::Mat& train_embedding() const override { return embedding_; }
  std::size_t dim() const override { return dim_; }

 private:
  /// Reconstruction weights of `point` over the given neighbor rows.
  std::vector<double> reconstruction_weights(const float* point,
                                             const std::vector<Neighbor>& neighbors,
                                             const linalg::Mat& refs) const;

  std::size_t dim_, k_;
  double reg_;
  std::uint64_t seed_;
  linalg::Mat train_x_;
  linalg::Mat embedding_;
  bool fitted_ = false;
};

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_LLE_H_
