// Geodesic (shortest-path) distances over a k-nearest-neighbor graph —
// step (1) and (2) of the Isomap template described in §II of the paper.
#ifndef NOBLE_MANIFOLD_GEODESIC_H_
#define NOBLE_MANIFOLD_GEODESIC_H_

#include "linalg/matrix.h"
#include "manifold/knn.h"

namespace noble::manifold {

/// Symmetric weighted kNN graph in adjacency-list form.
struct NeighborGraph {
  /// adjacency[i] = neighbors of i with Euclidean edge weights; symmetric
  /// closure of the kNN relation.
  std::vector<std::vector<Neighbor>> adjacency;

  std::size_t size() const { return adjacency.size(); }
};

/// Builds the symmetric kNN graph of the rows of x.
NeighborGraph build_knn_graph(const linalg::Mat& x, std::size_t k);

/// Single-source shortest path distances (Dijkstra, binary heap).
/// Unreachable nodes get +infinity.
std::vector<double> dijkstra(const NeighborGraph& graph, std::size_t source);

/// All-pairs geodesic distance matrix (n x n, float). Unreachable pairs
/// (disconnected components — e.g. separate buildings in signal space) are
/// patched to `disconnect_factor` times the largest finite distance, the
/// standard Isomap practice for disconnected neighborhoods.
linalg::Mat geodesic_distance_matrix(const NeighborGraph& graph,
                                     double disconnect_factor = 1.5);

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_GEODESIC_H_
