#include "manifold/mds.h"

#include <cmath>

#include "common/check.h"
#include "linalg/eigen.h"

namespace noble::manifold {

MdsResult classical_mds(const linalg::Mat& distances, std::size_t dim,
                        std::uint64_t seed) {
  NOBLE_EXPECTS(distances.rows() == distances.cols());
  NOBLE_EXPECTS(dim >= 1 && dim <= distances.rows());
  const std::size_t n = distances.rows();

  // Squared distances with row/col/grand means for double centering.
  linalg::Mat d2(n, n);
  std::vector<double> col_mean(n, 0.0);
  double grand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* src = distances.row(i);
    float* dst = d2.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double v = static_cast<double>(src[j]) * src[j];
      dst[j] = static_cast<float>(v);
      col_mean[j] += v;
      grand += v;
    }
  }
  for (std::size_t j = 0; j < n; ++j) col_mean[j] /= static_cast<double>(n);
  grand /= static_cast<double>(n) * static_cast<double>(n);

  // B = -1/2 (D2 - row_mean - col_mean + grand). Rows/cols symmetric.
  linalg::Mat b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* src = d2.row(i);
    float* dst = b.row(i);
    const double row_mean = col_mean[i];  // symmetric D -> row mean == col mean
    for (std::size_t j = 0; j < n; ++j) {
      dst[j] = static_cast<float>(-0.5 * (src[j] - row_mean - col_mean[j] + grand));
    }
  }

  const auto eig = linalg::top_k_eigen_symmetric(b, dim, seed);
  MdsResult res;
  res.eigenvalues = eig.values;
  res.sq_dist_col_mean = std::move(col_mean);
  res.sq_dist_grand_mean = grand;
  res.embedding.resize(n, dim);
  for (std::size_t k = 0; k < dim; ++k) {
    const double lambda = std::max(0.0, eig.values[k]);
    const double scale = std::sqrt(lambda);
    for (std::size_t i = 0; i < n; ++i) {
      res.embedding(i, k) = static_cast<float>(scale * eig.vectors(i, k));
    }
  }
  return res;
}

std::vector<double> mds_out_of_sample(const MdsResult& mds,
                                      const std::vector<double>& sq_dists_to_train) {
  const std::size_t n = mds.embedding.rows();
  const std::size_t dim = mds.embedding.cols();
  NOBLE_EXPECTS(sq_dists_to_train.size() == n);
  std::vector<double> y(dim, 0.0);
  for (std::size_t k = 0; k < dim; ++k) {
    const double lambda = mds.eigenvalues[k];
    if (lambda < 1e-9) continue;
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += static_cast<double>(mds.embedding(i, k)) *
             (sq_dists_to_train[i] - mds.sq_dist_col_mean[i]);
    }
    y[k] = -acc / (2.0 * lambda);
  }
  return y;
}

}  // namespace noble::manifold
