#include "manifold/lle.h"

#include <cmath>

#include "common/check.h"
#include "linalg/eigen.h"
#include "linalg/solve.h"

namespace noble::manifold {

Lle::Lle(std::size_t dim, std::size_t k, double reg, std::uint64_t seed)
    : dim_(dim), k_(k), reg_(reg), seed_(seed) {
  NOBLE_EXPECTS(dim >= 1 && k >= 2 && reg >= 0.0);
}

std::vector<double> Lle::reconstruction_weights(const float* point,
                                                const std::vector<Neighbor>& neighbors,
                                                const linalg::Mat& refs) const {
  const std::size_t k = neighbors.size();
  NOBLE_EXPECTS(k >= 1);
  const std::size_t d = refs.cols();
  // Local Gram matrix G_ij = (x - n_i) . (x - n_j), regularized by
  // reg * trace(G)/k * I, solved against the all-ones vector.
  linalg::MatD gram(k, k);
  std::vector<std::vector<double>> diff(k, std::vector<double>(d));
  for (std::size_t i = 0; i < k; ++i) {
    const float* ni = refs.row(neighbors[i].index);
    for (std::size_t c = 0; c < d; ++c)
      diff[i][c] = static_cast<double>(point[c]) - ni[c];
  }
  double trace = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i; j < k; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < d; ++c) s += diff[i][c] * diff[j][c];
      gram(i, j) = s;
      gram(j, i) = s;
    }
    trace += gram(i, i);
  }
  const double eps = reg_ * (trace > 0.0 ? trace / static_cast<double>(k) : 1.0) + 1e-12;
  for (std::size_t i = 0; i < k; ++i) gram(i, i) += eps;

  std::vector<double> w;
  const std::vector<double> ones(k, 1.0);
  if (!linalg::cholesky_solve(gram, ones, w)) {
    // Severely degenerate neighborhood: fall back to uniform weights.
    w.assign(k, 1.0 / static_cast<double>(k));
    return w;
  }
  double sum = 0.0;
  for (double v : w) sum += v;
  NOBLE_CHECK(std::fabs(sum) > 1e-12);
  for (double& v : w) v /= sum;
  return w;
}

void Lle::fit(const linalg::Mat& x) {
  NOBLE_EXPECTS(x.rows() > dim_ + 1);
  train_x_ = x;
  const std::size_t n = x.rows();
  const auto knn = knn_search(x, x, k_, /*exclude_self=*/true);

  // Dense M = (I - W)^T (I - W). n is a few thousand at most here, so a
  // dense accumulation is simpler and fast enough; W rows have k entries.
  linalg::Mat m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0f;
  // M = I - W - W^T + W^T W; accumulate sparse contributions.
  for (std::size_t i = 0; i < n; ++i) {
    const auto w = reconstruction_weights(x.row(i), knn[i], x);
    const auto& nbs = knn[i];
    for (std::size_t a = 0; a < nbs.size(); ++a) {
      m(i, nbs[a].index) -= static_cast<float>(w[a]);
      m(nbs[a].index, i) -= static_cast<float>(w[a]);
      for (std::size_t b = 0; b < nbs.size(); ++b) {
        m(nbs[a].index, nbs[b].index) += static_cast<float>(w[a] * w[b]);
      }
    }
  }

  // Deflate the known kernel vector (the constant): M has M 1 = 0, so add
  // shift * (1 1^T / n) to push the constant eigenvector's eigenvalue above
  // the band of interest. The remaining bottom eigenvectors are exactly
  // LLE's embedding coordinates (and are orthogonal to 1 -> centered).
  const double shift = linalg::gershgorin_upper_bound(m) + 1.0;
  const float shift_per_entry = static_cast<float>(shift / static_cast<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    float* row = m.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] += shift_per_entry;
  }

  const auto eig = linalg::bottom_k_eigen_symmetric(m, dim_, seed_, 500, 1e-8);
  embedding_.resize(n, dim_);
  const double scale = std::sqrt(static_cast<double>(n));
  for (std::size_t c = 0; c < dim_; ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      embedding_(i, c) = static_cast<float>(scale * eig.vectors(i, c));
    }
  }
  fitted_ = true;
}

linalg::Mat Lle::transform(const linalg::Mat& queries) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(queries.cols() == train_x_.cols());
  linalg::Mat out(queries.rows(), dim_);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto nbs = knn_query(train_x_, queries.row(q), k_);
    const auto w = reconstruction_weights(queries.row(q), nbs, train_x_);
    for (std::size_t c = 0; c < dim_; ++c) {
      double acc = 0.0;
      for (std::size_t a = 0; a < nbs.size(); ++a) {
        acc += w[a] * embedding_(nbs[a].index, c);
      }
      out(q, c) = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace noble::manifold
