// Common interface for manifold embedders (Isomap, LLE) used by the
// Manifold Embedding baselines of Table II.
#ifndef NOBLE_MANIFOLD_EMBEDDING_H_
#define NOBLE_MANIFOLD_EMBEDDING_H_

#include "linalg/matrix.h"

namespace noble::manifold {

/// Fits on a training set and embeds arbitrary queries (out-of-sample
/// extension). Embedding dimension is fixed at construction.
class Embedder {
 public:
  virtual ~Embedder() = default;

  /// Learns the embedding from training data (rows = samples).
  virtual void fit(const linalg::Mat& x) = 0;

  /// Embeds query rows; requires fit() first.
  virtual linalg::Mat transform(const linalg::Mat& queries) const = 0;

  /// Embedding of the training set itself (n x dim), valid after fit().
  virtual const linalg::Mat& train_embedding() const = 0;

  /// Target embedding dimensionality.
  virtual std::size_t dim() const = 0;
};

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_EMBEDDING_H_
