// Exact k-nearest-neighbor search (brute force with partial selection).
//
// Manifold baselines (Isomap/LLE) and the RADAR-style fingerprint baseline
// build on this. Sizes in this library are a few thousand points with a few
// hundred dimensions, where brute force with a GEMM-based distance matrix is
// both exact and fast.
#ifndef NOBLE_MANIFOLD_KNN_H_
#define NOBLE_MANIFOLD_KNN_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace noble::manifold {

/// One neighbor: index into the reference set and Euclidean distance.
struct Neighbor {
  std::size_t index;
  double distance;
};

/// k nearest rows of `refs` for each row of `queries` (excluding exact self
/// matches when `exclude_self_index` is true and refs == queries).
/// Results are sorted by ascending distance.
std::vector<std::vector<Neighbor>> knn_search(const linalg::Mat& refs,
                                              const linalg::Mat& queries, std::size_t k,
                                              bool exclude_self = false);

/// k nearest rows of `refs` for a single query vector.
std::vector<Neighbor> knn_query(const linalg::Mat& refs, const float* query,
                                std::size_t k);

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_KNN_H_
