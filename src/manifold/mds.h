// Classical multidimensional scaling — the algorithm the paper's §III-C
// analysis reduces NObLe's BCE objective to.
#ifndef NOBLE_MANIFOLD_MDS_H_
#define NOBLE_MANIFOLD_MDS_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace noble::manifold {

/// Result of classical MDS.
struct MdsResult {
  /// n x dim embedding (rows are points).
  linalg::Mat embedding;
  /// The top eigenvalues of the doubly-centered Gram matrix (descending).
  std::vector<double> eigenvalues;
  /// Column means of the squared-distance matrix (needed by Nystrom
  /// out-of-sample extension).
  std::vector<double> sq_dist_col_mean;
  /// Grand mean of the squared-distance matrix.
  double sq_dist_grand_mean = 0.0;
};

/// Classical MDS of a symmetric distance matrix: B = -1/2 J D^2 J, embedding
/// = V_k Lambda_k^{1/2}. Negative eigenvalues (non-Euclidean distances) are
/// clamped to zero.
MdsResult classical_mds(const linalg::Mat& distances, std::size_t dim,
                        std::uint64_t seed = 11);

/// Nystrom out-of-sample extension: embeds a query given its squared
/// distances to all training points:
/// y_k = -(e_k^T (d_q^2 - col_mean)) / (2 lambda_k), with e_k the k-th
/// embedding column (= sqrt(lambda_k) v_k). Dimensions with lambda ~ 0 map
/// to 0.
std::vector<double> mds_out_of_sample(const MdsResult& mds,
                                      const std::vector<double>& sq_dists_to_train);

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_MDS_H_
