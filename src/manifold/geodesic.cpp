#include "manifold/geodesic.h"

#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"

namespace noble::manifold {

NeighborGraph build_knn_graph(const linalg::Mat& x, std::size_t k) {
  NOBLE_EXPECTS(x.rows() >= 2);
  const auto knn = knn_search(x, x, k, /*exclude_self=*/true);
  NeighborGraph g;
  g.adjacency.resize(x.rows());
  for (std::size_t i = 0; i < knn.size(); ++i) {
    for (const Neighbor& nb : knn[i]) {
      g.adjacency[i].push_back(nb);
      // Symmetric closure: ensure the reverse edge exists.
      bool found = false;
      for (const Neighbor& back : g.adjacency[nb.index]) {
        if (back.index == i) {
          found = true;
          break;
        }
      }
      if (!found) g.adjacency[nb.index].push_back({i, nb.distance});
    }
  }
  return g;
}

std::vector<double> dijkstra(const NeighborGraph& graph, std::size_t source) {
  NOBLE_EXPECTS(source < graph.size());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(graph.size(), kInf);
  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    for (const Neighbor& nb : graph.adjacency[u]) {
      const double nd = d + nb.distance;
      if (nd < dist[nb.index]) {
        dist[nb.index] = nd;
        heap.push({nd, nb.index});
      }
    }
  }
  return dist;
}

linalg::Mat geodesic_distance_matrix(const NeighborGraph& graph,
                                     double disconnect_factor) {
  NOBLE_EXPECTS(disconnect_factor >= 1.0);
  const std::size_t n = graph.size();
  linalg::Mat d(n, n);
  double max_finite = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = dijkstra(graph, i);
    for (std::size_t j = 0; j < n; ++j) {
      const double v = row[j];
      if (std::isfinite(v)) {
        d(i, j) = static_cast<float>(v);
        if (v > max_finite) max_finite = v;
      } else {
        d(i, j) = -1.0f;  // marker, patched below
      }
    }
  }
  const float patch = static_cast<float>(max_finite * disconnect_factor);
  float* p = d.data();
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (p[i] < 0.0f) p[i] = patch;
  }
  return d;
}

}  // namespace noble::manifold
