#include "manifold/isomap.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace noble::manifold {

Isomap::Isomap(std::size_t dim, std::size_t k, std::uint64_t seed)
    : dim_(dim), k_(k), seed_(seed) {
  NOBLE_EXPECTS(dim >= 1 && k >= 2);
}

void Isomap::fit(const linalg::Mat& x) {
  NOBLE_EXPECTS(x.rows() > dim_);
  train_x_ = x;
  const NeighborGraph graph = build_knn_graph(x, k_);
  geo_ = geodesic_distance_matrix(graph);
  mds_ = classical_mds(geo_, dim_, seed_);
  fitted_ = true;
}

linalg::Mat Isomap::transform(const linalg::Mat& queries) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(queries.cols() == train_x_.cols());
  const std::size_t n = train_x_.rows();
  linalg::Mat out(queries.rows(), dim_);
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    // Approximate geodesic from the query to every training point: route
    // through the query's k nearest training samples.
    const auto anchors = knn_query(train_x_, queries.row(q), k_);
    std::vector<double> geo_q(n, std::numeric_limits<double>::infinity());
    for (const Neighbor& a : anchors) {
      const float* geo_row = geo_.row(a.index);
      for (std::size_t i = 0; i < n; ++i) {
        const double via = a.distance + static_cast<double>(geo_row[i]);
        if (via < geo_q[i]) geo_q[i] = via;
      }
    }
    std::vector<double> sq(n);
    for (std::size_t i = 0; i < n; ++i) sq[i] = geo_q[i] * geo_q[i];
    const auto y = mds_out_of_sample(mds_, sq);
    for (std::size_t kk = 0; kk < dim_; ++kk)
      out(q, kk) = static_cast<float>(y[kk]);
  }
  return out;
}

}  // namespace noble::manifold
