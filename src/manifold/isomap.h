// Isomap (Tenenbaum et al., Science 2000): geodesic distances over a kNN
// graph followed by classical MDS; out-of-sample queries are embedded by the
// Nystrom extension with approximate geodesics through the query's nearest
// training neighbors.
#ifndef NOBLE_MANIFOLD_ISOMAP_H_
#define NOBLE_MANIFOLD_ISOMAP_H_

#include <cstdint>

#include "manifold/embedding.h"
#include "manifold/geodesic.h"
#include "manifold/mds.h"

namespace noble::manifold {

/// Isomap embedder with Nystrom out-of-sample extension.
class Isomap : public Embedder {
 public:
  /// `dim`: embedding dimensionality; `k`: neighborhood size.
  Isomap(std::size_t dim, std::size_t k, std::uint64_t seed = 17);

  void fit(const linalg::Mat& x) override;
  linalg::Mat transform(const linalg::Mat& queries) const override;
  const linalg::Mat& train_embedding() const override { return mds_.embedding; }
  std::size_t dim() const override { return dim_; }

  /// Geodesic distance matrix of the training set (valid after fit) —
  /// exposed for tests and diagnostics.
  const linalg::Mat& train_geodesics() const { return geo_; }

 private:
  std::size_t dim_, k_;
  std::uint64_t seed_;
  linalg::Mat train_x_;
  linalg::Mat geo_;
  MdsResult mds_;
  bool fitted_ = false;
};

}  // namespace noble::manifold

#endif  // NOBLE_MANIFOLD_ISOMAP_H_
