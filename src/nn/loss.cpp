#include "nn/loss.h"

#include <cmath>

#include "common/check.h"

namespace noble::nn {

double MseLoss::compute(const Mat& pred, const Mat& target, Mat& grad) const {
  NOBLE_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols());
  const std::size_t n = pred.rows();
  grad.resize(n, pred.cols());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = grad.data();
  double loss = 0.0;
  const double inv_n = n ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    loss += d * d;
    pg[i] = static_cast<float>(2.0 * d * inv_n);
  }
  return loss * inv_n;
}

BceWithLogitsLoss::BceWithLogitsLoss(double positive_weight)
    : positive_weight_(positive_weight) {
  NOBLE_EXPECTS(positive_weight > 0.0);
}

double BceWithLogitsLoss::compute(const Mat& pred, const Mat& target, Mat& grad) const {
  NOBLE_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols());
  const std::size_t n = pred.rows();
  grad.resize(n, pred.cols());
  const float* pz = pred.data();
  const float* pt = target.data();
  float* pg = grad.data();
  double loss = 0.0;
  const double inv_n = n ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double z = pz[i];
    const double t = pt[i];
    // Stable: max(z,0) - z*t + log(1 + exp(-|z|)); positives weighted by w:
    // L = -w*t*log(s) - (1-t)*log(1-s) with s = sigmoid(z).
    const double log1pexp_negabs = std::log1p(std::exp(-std::fabs(z)));
    const double log_s = (z < 0.0 ? z : 0.0) - log1pexp_negabs;        // log sigmoid(z)
    const double log_1ms = (z < 0.0 ? 0.0 : -z) - log1pexp_negabs;     // log (1-sigmoid(z))
    loss += -positive_weight_ * t * log_s - (1.0 - t) * log_1ms;
    const double s = 1.0 / (1.0 + std::exp(-z));
    // d/dz [-w t log s - (1-t) log(1-s)] = -w t (1-s) + (1-t) s.
    pg[i] = static_cast<float>((-positive_weight_ * t * (1.0 - s) + (1.0 - t) * s) * inv_n);
  }
  return loss * inv_n;
}

double SoftmaxCrossEntropyLoss::compute(const Mat& pred, const Mat& target,
                                        Mat& grad) const {
  NOBLE_EXPECTS(pred.rows() == target.rows() && pred.cols() == target.cols());
  const std::size_t n = pred.rows(), k = pred.cols();
  grad.resize(n, k);
  double loss = 0.0;
  const double inv_n = n ? 1.0 / static_cast<double>(n) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = pred.row(i);
    const float* t = target.row(i);
    float* g = grad.row(i);
    double zmax = z[0];
    for (std::size_t j = 1; j < k; ++j) zmax = std::max(zmax, static_cast<double>(z[j]));
    double denom = 0.0;
    for (std::size_t j = 0; j < k; ++j) denom += std::exp(z[j] - zmax);
    const double log_denom = std::log(denom) + zmax;
    for (std::size_t j = 0; j < k; ++j) {
      const double log_p = z[j] - log_denom;
      loss -= t[j] * log_p;
      g[j] = static_cast<float>((std::exp(log_p) - t[j]) * inv_n);
    }
  }
  return loss * inv_n;
}

}  // namespace noble::nn
