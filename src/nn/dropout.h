// Inverted dropout (train-time scaling), for regularization ablations.
#ifndef NOBLE_NN_DROPOUT_H_
#define NOBLE_NN_DROPOUT_H_

#include "common/rng.h"
#include "nn/layer.h"

namespace noble::nn {

/// Randomly zeroes activations with probability `rate` during training and
/// rescales survivors by 1/(1-rate); identity at inference.
class Dropout : public Layer {
 public:
  Dropout(double rate, std::uint64_t seed);

  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::string name() const override { return "Dropout"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  double rate_;
  Rng rng_;
  Mat mask_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_DROPOUT_H_
