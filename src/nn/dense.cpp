#include "nn/dense.h"

#include "kernels/kernels.h"
#include "linalg/ops.h"
#include "nn/init.h"

namespace noble::nn {

using linalg::gemm_nt;
using linalg::gemm_tn;

Dense::Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng)
    : in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim, out_dim),
      b_(1, out_dim),
      dw_(in_dim, out_dim),
      db_(1, out_dim) {
  NOBLE_EXPECTS(in_dim > 0 && out_dim > 0);
  xavier_uniform(w_, in_dim, out_dim, rng);
}

void Dense::forward(const Mat& x, Mat& y, bool /*training*/) { infer(x, y); }

void Dense::infer(const Mat& x, Mat& y) const {
  NOBLE_EXPECTS(x.cols() == in_dim_);
  // GEMM + bias in one dispatched kernel call (bias rides the epilogue; the
  // result is bit-identical to the historical gemm-then-add-loop).
  kernels::Epilogue ep;
  ep.bias = b_.row(0);
  kernels::dense_forward(x, w_.data(), in_dim_, out_dim_, ep, y);
}

void Dense::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(x.cols() == in_dim_ && dy.cols() == out_dim_);
  NOBLE_EXPECTS(x.rows() == dy.rows());
  // dW += x^T dy ; db += column sums of dy ; dx = dy W^T.
  Mat dw_batch;
  gemm_tn(x, dy, dw_batch);
  linalg::axpy(1.0f, dw_batch, dw_);
  const auto dbs = linalg::col_sum(dy);
  float* db = db_.row(0);
  for (std::size_t j = 0; j < out_dim_; ++j) db[j] += dbs[j];
  gemm_nt(dy, w_, dx);
}

TimeDistributedDense::TimeDistributedDense(std::size_t segments, std::size_t in_dim,
                                           std::size_t out_dim, Rng& rng)
    : segments_(segments),
      in_dim_(in_dim),
      out_dim_(out_dim),
      w_(in_dim, out_dim),
      b_(1, out_dim),
      dw_(in_dim, out_dim),
      db_(1, out_dim) {
  NOBLE_EXPECTS(segments > 0 && in_dim > 0 && out_dim > 0);
  xavier_uniform(w_, in_dim, out_dim, rng);
}

void TimeDistributedDense::forward(const Mat& x, Mat& y, bool /*training*/) {
  infer(x, y);
}

void TimeDistributedDense::infer(const Mat& x, Mat& y) const {
  NOBLE_EXPECTS(x.cols() == segments_ * in_dim_);
  const std::size_t n = x.rows();
  y.resize(n, segments_ * out_dim_);
  const float* b = b_.row(0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (std::size_t s = 0; s < segments_; ++s) {
      const float* g = xi + s * in_dim_;
      float* o = yi + s * out_dim_;
      for (std::size_t j = 0; j < out_dim_; ++j) o[j] = b[j];
      for (std::size_t p = 0; p < in_dim_; ++p) {
        const float gp = g[p];
        if (gp == 0.0f) continue;
        const float* wrow = w_.row(p);
        for (std::size_t j = 0; j < out_dim_; ++j) o[j] += gp * wrow[j];
      }
    }
  }
}

void TimeDistributedDense::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(x.cols() == segments_ * in_dim_);
  NOBLE_EXPECTS(dy.cols() == segments_ * out_dim_);
  const std::size_t n = x.rows();
  dx.resize(n, segments_ * in_dim_);
  float* db = db_.row(0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.row(i);
    const float* dyi = dy.row(i);
    float* dxi = dx.row(i);
    for (std::size_t s = 0; s < segments_; ++s) {
      const float* g = xi + s * in_dim_;
      const float* dout = dyi + s * out_dim_;
      float* dg = dxi + s * in_dim_;
      for (std::size_t j = 0; j < out_dim_; ++j) db[j] += dout[j];
      for (std::size_t p = 0; p < in_dim_; ++p) {
        const float* wrow = w_.row(p);
        float* dwrow = dw_.row(p);
        double acc = 0.0;
        const float gp = g[p];
        for (std::size_t j = 0; j < out_dim_; ++j) {
          acc += static_cast<double>(wrow[j]) * dout[j];
          dwrow[j] += gp * dout[j];
        }
        dg[p] = static_cast<float>(acc);
      }
    }
  }
}

}  // namespace noble::nn
