#include "nn/init.h"

#include <cmath>

namespace noble::nn {

void xavier_uniform(linalg::Mat& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  NOBLE_EXPECTS(fan_in + fan_out > 0);
  const double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  float* p = w.data();
  for (std::size_t i = 0; i < w.size(); ++i)
    p[i] = static_cast<float>(rng.uniform(-a, a));
}

void xavier_normal(linalg::Mat& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  NOBLE_EXPECTS(fan_in + fan_out > 0);
  const double sigma = std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
  float* p = w.data();
  for (std::size_t i = 0; i < w.size(); ++i)
    p[i] = static_cast<float>(rng.normal(0.0, sigma));
}

void he_normal(linalg::Mat& w, std::size_t fan_in, Rng& rng) {
  NOBLE_EXPECTS(fan_in > 0);
  const double sigma = std::sqrt(2.0 / static_cast<double>(fan_in));
  float* p = w.data();
  for (std::size_t i = 0; i < w.size(); ++i)
    p[i] = static_cast<float>(rng.normal(0.0, sigma));
}

}  // namespace noble::nn
