#include "nn/trainer.h"

#include <limits>

#include "linalg/ops.h"

namespace noble::nn {

Trainer::Trainer(Optimizer& opt, const Loss& loss, TrainConfig config)
    : opt_(opt), loss_(loss), config_(std::move(config)) {
  NOBLE_EXPECTS(config_.epochs > 0 && config_.batch_size > 0);
}

TrainResult Trainer::fit(Sequential& net, const Mat& x, const Mat& y, const Mat* x_val,
                         const Mat* y_val) {
  NOBLE_EXPECTS(x.rows() == y.rows());
  NOBLE_EXPECTS((x_val == nullptr) == (y_val == nullptr));
  const std::size_t n = x.rows();
  Rng rng(config_.shuffle_seed);

  TrainResult result;
  double best_val = std::numeric_limits<double>::infinity();
  std::size_t epochs_since_best = 0;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  Mat grad, dx;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      // Batch-norm cannot compute statistics on a single sample; fold a
      // trailing singleton into the previous batch instead of dropping it.
      if (end - start < 2 && batches > 0) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                   order.begin() + static_cast<std::ptrdiff_t>(end));
      const Mat xb = linalg::take_rows(x, idx);
      const Mat yb = linalg::take_rows(y, idx);

      const Mat& pred = net.forward(xb, /*training=*/true);
      epoch_loss += loss_.compute(pred, yb, grad);
      ++batches;
      net.zero_grads();
      net.backward(grad, dx);
      opt_.step(net.params(), net.grads());
    }
    epoch_loss /= static_cast<double>(batches ? batches : 1);
    result.train_loss_history.push_back(epoch_loss);
    result.final_train_loss = epoch_loss;
    ++result.epochs_run;

    double val_loss = 0.0;
    if (x_val != nullptr && config_.patience > 0) {
      val_loss = evaluate(net, *x_val, *y_val);
      result.val_loss_history.push_back(val_loss);
      if (val_loss < best_val - 1e-9) {
        best_val = val_loss;
        epochs_since_best = 0;
      } else {
        ++epochs_since_best;
      }
    }
    if (config_.on_epoch) config_.on_epoch(epoch, epoch_loss, val_loss);
    if (config_.patience > 0 && epochs_since_best >= config_.patience) break;
    opt_.set_learning_rate(opt_.learning_rate() * config_.lr_decay);
  }
  result.best_val_loss = best_val;
  return result;
}

double Trainer::evaluate(Sequential& net, const Mat& x, const Mat& y) const {
  Mat pred = net.predict(x);
  Mat grad;
  return loss_.compute(pred, y, grad);
}

}  // namespace noble::nn
