// Weight initialization schemes. The paper uses Xavier (Glorot) init [20].
#ifndef NOBLE_NN_INIT_H_
#define NOBLE_NN_INIT_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace noble::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(linalg::Mat& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out)).
void xavier_normal(linalg::Mat& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, 2 / fan_in) — used with ReLU activations.
void he_normal(linalg::Mat& w, std::size_t fan_in, Rng& rng);

}  // namespace noble::nn

#endif  // NOBLE_NN_INIT_H_
