#include "nn/network.h"

#include <utility>

#include "nn/dense.h"

namespace noble::nn {

const Mat& Sequential::forward(const Mat& x, bool training) {
  NOBLE_EXPECTS(!layers_.empty());
  acts_.resize(layers_.size() + 1);
  acts_[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(acts_[i], acts_[i + 1], training);
  }
  return acts_.back();
}

void Sequential::backward(const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(acts_.size() == layers_.size() + 1);  // forward must precede
  Mat grad = dy;
  Mat grad_prev;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward(acts_[i], grad, grad_prev);
    std::swap(grad, grad_prev);
  }
  dx = std::move(grad);
}

Mat Sequential::predict(const Mat& x) const {
  Mat cur = x, next;
  for (const auto& layer : layers_) {
    layer->infer(cur, next);
    std::swap(cur, next);
  }
  return cur;
}

std::vector<Mat*> Sequential::params() {
  std::vector<Mat*> out;
  for (auto& layer : layers_)
    for (Mat* p : layer->params()) out.push_back(p);
  return out;
}

std::vector<const Mat*> Sequential::params() const {
  std::vector<const Mat*> out;
  for (const auto& layer : layers_)
    for (const Mat* p : std::as_const(*layer).params()) out.push_back(p);
  return out;
}

std::vector<Mat*> Sequential::grads() {
  std::vector<Mat*> out;
  for (auto& layer : layers_)
    for (Mat* g : layer->grads()) out.push_back(g);
  return out;
}

std::vector<Mat*> Sequential::state() {
  std::vector<Mat*> out;
  for (auto& layer : layers_)
    for (Mat* s : layer->state()) out.push_back(s);
  return out;
}

std::vector<const Mat*> Sequential::state() const {
  std::vector<const Mat*> out;
  for (const auto& layer : layers_)
    for (const Mat* s : std::as_const(*layer).state()) out.push_back(s);
  return out;
}

void Sequential::zero_grads() {
  for (auto& layer : layers_) layer->zero_grads();
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  for (const Mat* p : params()) n += p->size();
  return n;
}

std::size_t Sequential::macs_per_inference(std::size_t input_dim) const {
  std::size_t macs = 0;
  std::size_t dim = input_dim;
  for (const auto& layer : layers_) {
    if (const auto* dense = dynamic_cast<const Dense*>(layer.get())) {
      macs += dense->in_dim() * dense->out();
    } else if (const auto* td = dynamic_cast<const TimeDistributedDense*>(layer.get())) {
      macs += td->segments() * (dim / td->segments()) * (td->output_dim(dim) / td->segments());
    }
    dim = layer->output_dim(dim);
  }
  return macs;
}

}  // namespace noble::nn
