#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace noble::nn {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {
  NOBLE_EXPECTS(lr > 0.0 && momentum >= 0.0 && momentum < 1.0 && weight_decay >= 0.0);
}

void Sgd::step(const std::vector<Mat*>& params, const std::vector<Mat*>& grads) {
  NOBLE_EXPECTS(params.size() == grads.size());
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const Mat* p : params) velocity_.emplace_back(p->rows(), p->cols());
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    Mat& p = *params[k];
    const Mat& g = *grads[k];
    Mat& vel = velocity_[k];
    NOBLE_EXPECTS(p.size() == g.size() && p.size() == vel.size());
    float* pp = p.data();
    const float* pg = g.data();
    float* pv = vel.data();
    const auto lr = static_cast<float>(lr_);
    const auto mom = static_cast<float>(momentum_);
    const auto wd = static_cast<float>(weight_decay_);
    for (std::size_t i = 0; i < p.size(); ++i) {
      pv[i] = mom * pv[i] - lr * (pg[i] + wd * pp[i]);
      pp[i] += pv[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps, double weight_decay)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {
  NOBLE_EXPECTS(lr > 0.0 && beta1 >= 0.0 && beta1 < 1.0 && beta2 >= 0.0 && beta2 < 1.0);
}

void Adam::step(const std::vector<Mat*>& params, const std::vector<Mat*>& grads) {
  NOBLE_EXPECTS(params.size() == grads.size());
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const Mat* p : params) {
      m_.emplace_back(p->rows(), p->cols());
      v_.emplace_back(p->rows(), p->cols());
    }
    t_ = 0;
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t k = 0; k < params.size(); ++k) {
    Mat& p = *params[k];
    const Mat& g = *grads[k];
    NOBLE_EXPECTS(p.size() == g.size());
    float* pp = p.data();
    const float* pg = g.data();
    float* pm = m_[k].data();
    float* pv = v_[k].data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double gi = pg[i] + weight_decay_ * pp[i];
      pm[i] = static_cast<float>(beta1_ * pm[i] + (1.0 - beta1_) * gi);
      pv[i] = static_cast<float>(beta2_ * pv[i] + (1.0 - beta2_) * gi * gi);
      const double mhat = pm[i] / bias1;
      const double vhat = pv[i] / bias2;
      pp[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace noble::nn
