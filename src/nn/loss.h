// Loss functions. NObLe trains with binary cross-entropy over multi-hot
// labels (§III-C); the Deep Regression baselines use mean squared error;
// softmax cross-entropy is provided for single-label ablations.
#ifndef NOBLE_NN_LOSS_H_
#define NOBLE_NN_LOSS_H_

#include <string>

#include "linalg/matrix.h"

namespace noble::nn {

using linalg::Mat;

/// Interface: computes the scalar loss and dL/d(pred) for a batch.
/// Losses are averaged over the batch dimension (summed over features),
/// matching the gradient scale used by the trainer.
class Loss {
 public:
  virtual ~Loss() = default;
  /// Returns the batch-mean loss and writes dL/dpred into `grad`.
  virtual double compute(const Mat& pred, const Mat& target, Mat& grad) const = 0;
  virtual std::string name() const = 0;
};

/// L = mean_i ||pred_i - target_i||^2 (sum over output dims).
class MseLoss : public Loss {
 public:
  double compute(const Mat& pred, const Mat& target, Mat& grad) const override;
  std::string name() const override { return "MSE"; }
};

/// Multi-label binary cross-entropy on raw logits (numerically stable form).
/// Targets are multi-hot in [0,1]; loss is summed over labels, averaged over
/// the batch. This is the paper's J(h, h_hat) of §III-C.
class BceWithLogitsLoss : public Loss {
 public:
  /// `positive_weight` > 1 upweights positive labels (useful because
  /// fine-grained quantization yields extremely sparse positives).
  explicit BceWithLogitsLoss(double positive_weight = 1.0);
  double compute(const Mat& pred, const Mat& target, Mat& grad) const override;
  std::string name() const override { return "BCEWithLogits"; }

 private:
  double positive_weight_;
};

/// Softmax cross-entropy on raw logits with one-hot targets.
class SoftmaxCrossEntropyLoss : public Loss {
 public:
  double compute(const Mat& pred, const Mat& target, Mat& grad) const override;
  std::string name() const override { return "SoftmaxCE"; }
};

}  // namespace noble::nn

#endif  // NOBLE_NN_LOSS_H_
