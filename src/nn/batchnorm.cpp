#include "nn/batchnorm.h"

#include <cmath>

#include "linalg/ops.h"

namespace noble::nn {

BatchNorm1d::BatchNorm1d(std::size_t dim, float momentum, float eps)
    : dim_(dim),
      momentum_(momentum),
      eps_(eps),
      gamma_(1, dim, 1.0f),
      beta_(1, dim),
      dgamma_(1, dim),
      dbeta_(1, dim),
      running_mean_(1, dim),
      running_var_(1, dim, 1.0f) {
  NOBLE_EXPECTS(dim > 0);
  NOBLE_EXPECTS(momentum >= 0.0f && momentum < 1.0f);
}

void BatchNorm1d::forward(const Mat& x, Mat& y, bool training) {
  NOBLE_EXPECTS(x.cols() == dim_);
  const std::size_t n = x.rows();
  y.resize(n, dim_);
  if (training) {
    NOBLE_EXPECTS(n >= 2);  // batch statistics are undefined for n < 2
    const auto mu = linalg::col_mean(x);
    const auto var = linalg::col_var(x);
    inv_std_.resize(dim_);
    for (std::size_t j = 0; j < dim_; ++j)
      inv_std_[j] = 1.0f / std::sqrt(var[j] + eps_);
    // Update running statistics.
    for (std::size_t j = 0; j < dim_; ++j) {
      running_mean_(0, j) = momentum_ * running_mean_(0, j) + (1.0f - momentum_) * mu[j];
      running_var_(0, j) = momentum_ * running_var_(0, j) + (1.0f - momentum_) * var[j];
    }
    x_hat_.resize(n, dim_);
    for (std::size_t i = 0; i < n; ++i) {
      const float* xi = x.row(i);
      float* hi = x_hat_.row(i);
      float* yi = y.row(i);
      for (std::size_t j = 0; j < dim_; ++j) {
        hi[j] = (xi[j] - mu[j]) * inv_std_[j];
        yi[j] = gamma_(0, j) * hi[j] + beta_(0, j);
      }
    }
  } else {
    infer(x, y);
  }
}

void BatchNorm1d::infer(const Mat& x, Mat& y) const {
  NOBLE_EXPECTS(x.cols() == dim_);
  const std::size_t n = x.rows();
  y.resize(n, dim_);
  for (std::size_t i = 0; i < n; ++i) {
    const float* xi = x.row(i);
    float* yi = y.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      const float inv = 1.0f / std::sqrt(running_var_(0, j) + eps_);
      yi[j] = gamma_(0, j) * (xi[j] - running_mean_(0, j)) * inv + beta_(0, j);
    }
  }
}

void BatchNorm1d::backward(const Mat& x, const Mat& dy, Mat& dx) {
  (void)x;
  NOBLE_EXPECTS(dy.cols() == dim_);
  NOBLE_EXPECTS(x_hat_.rows() == dy.rows());  // forward(training=true) must precede
  const std::size_t n = dy.rows();
  dx.resize(n, dim_);

  // Standard batch-norm backward:
  // dx = (gamma * inv_std / n) * (n*dy - sum(dy) - x_hat * sum(dy*x_hat)).
  std::vector<double> sum_dy(dim_, 0.0), sum_dy_xhat(dim_, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const float* dyi = dy.row(i);
    const float* hi = x_hat_.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      sum_dy[j] += dyi[j];
      sum_dy_xhat[j] += static_cast<double>(dyi[j]) * hi[j];
    }
  }
  for (std::size_t j = 0; j < dim_; ++j) {
    dgamma_(0, j) += static_cast<float>(sum_dy_xhat[j]);
    dbeta_(0, j) += static_cast<float>(sum_dy[j]);
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const float* dyi = dy.row(i);
    const float* hi = x_hat_.row(i);
    float* dxi = dx.row(i);
    for (std::size_t j = 0; j < dim_; ++j) {
      const double t = static_cast<double>(n) * dyi[j] - sum_dy[j] -
                       static_cast<double>(hi[j]) * sum_dy_xhat[j];
      dxi[j] = static_cast<float>(gamma_(0, j) * inv_std_[j] * inv_n * t);
    }
  }
}

}  // namespace noble::nn
