// Layer abstraction for the from-scratch neural-network library.
//
// The paper's models are small feed-forward networks (2 hidden layers of 128,
// tanh, batch norm, Xavier init — §IV-A / §V-B), so the framework is a
// classic define-by-layer design: each layer caches whatever it needs during
// `forward` and consumes it in `backward`. Batches are row-major matrices
// (batch x features).
#ifndef NOBLE_NN_LAYER_H_
#define NOBLE_NN_LAYER_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace noble::nn {

using linalg::Mat;

/// Interface for a differentiable layer.
///
/// Contract: `backward` must be called with the same input `x` as the
/// immediately preceding `forward` call (layers may cache activations).
/// Parameter gradients accumulate across calls until `zero_grads`.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes y = f(x). `training` toggles train-time behaviour
  /// (batch-norm batch statistics, dropout masks).
  virtual void forward(const Mat& x, Mat& y, bool training) = 0;

  /// Inference-only forward: y = f(x) in evaluation mode. Must not mutate
  /// the layer — no activation caches, no running-statistic updates — so a
  /// const network can be shared across threads (the serve API contract).
  virtual void infer(const Mat& x, Mat& y) const = 0;

  /// Given dL/dy, accumulates parameter gradients and computes dL/dx.
  virtual void backward(const Mat& x, const Mat& dy, Mat& dx) = 0;

  /// Trainable parameters (may be empty). Order is stable across calls.
  virtual std::vector<Mat*> params() { return {}; }

  /// Read-only view of `params()`, aligned with the mutable overload.
  virtual std::vector<const Mat*> params() const { return {}; }

  /// Gradients aligned 1:1 with `params()`.
  virtual std::vector<Mat*> grads() { return {}; }

  /// Non-trainable state tensors that must survive serialization
  /// (batch-norm running statistics). Not touched by optimizers.
  virtual std::vector<Mat*> state() { return {}; }

  /// Read-only view of `state()`, aligned with the mutable overload.
  virtual std::vector<const Mat*> state() const { return {}; }

  /// Zeroes accumulated parameter gradients.
  void zero_grads() {
    for (Mat* g : grads()) g->fill(0.0f);
  }

  /// Human-readable layer name for diagnostics and serialization.
  virtual std::string name() const = 0;

  /// Output feature count for a given input feature count.
  virtual std::size_t output_dim(std::size_t input_dim) const = 0;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_LAYER_H_
