// Elementwise activation layers. The paper's networks use hyperbolic tangent
// (§IV-A); ReLU and Sigmoid are provided for ablations and the baselines.
#ifndef NOBLE_NN_ACTIVATIONS_H_
#define NOBLE_NN_ACTIVATIONS_H_

#include "nn/layer.h"

namespace noble::nn {

/// y = tanh(x).
class Tanh : public Layer {
 public:
  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::string name() const override { return "Tanh"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  Mat y_cache_;
};

/// y = max(0, x).
class Relu : public Layer {
 public:
  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::string name() const override { return "Relu"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }
};

/// y = 1 / (1 + exp(-x)).
class Sigmoid : public Layer {
 public:
  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::string name() const override { return "Sigmoid"; }
  std::size_t output_dim(std::size_t input_dim) const override { return input_dim; }

 private:
  Mat y_cache_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_ACTIVATIONS_H_
