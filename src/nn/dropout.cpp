#include "nn/dropout.h"

namespace noble::nn {

Dropout::Dropout(double rate, std::uint64_t seed) : rate_(rate), rng_(seed) {
  NOBLE_EXPECTS(rate >= 0.0 && rate < 1.0);
}

void Dropout::infer(const Mat& x, Mat& y) const { y = x; }

void Dropout::forward(const Mat& x, Mat& y, bool training) {
  y.resize(x.rows(), x.cols());
  if (!training || rate_ == 0.0) {
    y = x;
    mask_.resize(0, 0);
    return;
  }
  mask_.resize(x.rows(), x.cols());
  const float keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  const float* px = x.data();
  float* py = y.data();
  float* pm = mask_.data();
  for (std::size_t i = 0; i < x.size(); ++i) {
    const bool keep = !rng_.bernoulli(rate_);
    pm[i] = keep ? keep_scale : 0.0f;
    py[i] = px[i] * pm[i];
  }
}

void Dropout::backward(const Mat& x, const Mat& dy, Mat& dx) {
  (void)x;
  dx.resize(dy.rows(), dy.cols());
  if (mask_.empty()) {
    dx = dy;
    return;
  }
  NOBLE_EXPECTS(mask_.rows() == dy.rows() && mask_.cols() == dy.cols());
  const float* pdy = dy.data();
  const float* pm = mask_.data();
  float* pdx = dx.data();
  for (std::size_t i = 0; i < dy.size(); ++i) pdx[i] = pdy[i] * pm[i];
}

}  // namespace noble::nn
