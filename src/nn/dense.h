// Fully-connected layer and its weight-shared time-distributed variant.
#ifndef NOBLE_NN_DENSE_H_
#define NOBLE_NN_DENSE_H_

#include "common/rng.h"
#include "nn/layer.h"

namespace noble::nn {

/// y = x W + b with W of shape (in x out).
class Dense : public Layer {
 public:
  /// Xavier-uniform initialized dense layer.
  Dense(std::size_t in_dim, std::size_t out_dim, Rng& rng);

  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::vector<Mat*> params() override { return {&w_, &b_}; }
  std::vector<const Mat*> params() const override { return {&w_, &b_}; }
  std::vector<Mat*> grads() override { return {&dw_, &db_}; }
  std::string name() const override { return "Dense"; }
  std::size_t output_dim(std::size_t) const override { return out_dim_; }

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out() const { return out_dim_; }
  /// Weight matrix (in x out); exposed for the §III-C embedding analysis
  /// (class weight vectors w_c live in the columns of the last layer).
  const Mat& weights() const { return w_; }
  Mat& weights() { return w_; }
  const Mat& bias() const { return b_; }

 private:
  std::size_t in_dim_, out_dim_;
  Mat w_, b_;    // parameters
  Mat dw_, db_;  // gradients
};

/// Applies one shared Dense transform independently to each of `segments`
/// equal slices of the input row: input rows are the concatenation
/// [g_1 | g_2 | ... | g_S] with |g_i| = in_dim; output rows concatenate
/// [W g_1 | ... | W g_S]. This is the paper's §V-B projection module: "each
/// g_i is multiplied by the same trainable projection weight".
class TimeDistributedDense : public Layer {
 public:
  TimeDistributedDense(std::size_t segments, std::size_t in_dim, std::size_t out_dim,
                       Rng& rng);

  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::vector<Mat*> params() override { return {&w_, &b_}; }
  std::vector<const Mat*> params() const override { return {&w_, &b_}; }
  std::vector<Mat*> grads() override { return {&dw_, &db_}; }
  std::string name() const override { return "TimeDistributedDense"; }
  std::size_t output_dim(std::size_t) const override { return segments_ * out_dim_; }

  std::size_t segments() const { return segments_; }

 private:
  std::size_t segments_, in_dim_, out_dim_;
  Mat w_, b_;
  Mat dw_, db_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_DENSE_H_
