// Distance-based output layer: logits_c = -1/2 ||z - w_c||^2.
//
// §III-C of the paper rewrites the classification head's sigmoid inner
// product in exactly this Euclidean form (h_c = (1 + exp(1/2 ||w_c - z||^2
// - 1))^-1 for normalized w, z): the class weights w_c act as prototypes in
// the reconstructed embedding space and the argmax class is the nearest
// prototype. This layer makes that geometry explicit, which converges much
// faster than a plain Dense head when the classes tile a metric space (the
// neighborhood classes of the location network).
#ifndef NOBLE_NN_RBF_OUTPUT_H_
#define NOBLE_NN_RBF_OUTPUT_H_

#include "common/rng.h"
#include "nn/layer.h"

namespace noble::nn {

/// logits_c = -0.5 * ||z - w_c||^2 with one prototype w_c per class.
class RbfOutput : public Layer {
 public:
  /// `in_dim` embedding size, `num_classes` prototypes, Gaussian init.
  RbfOutput(std::size_t in_dim, std::size_t num_classes, Rng& rng,
            float init_scale = 0.5f);

  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::vector<Mat*> params() override { return {&w_}; }
  std::vector<const Mat*> params() const override { return {&w_}; }
  std::vector<Mat*> grads() override { return {&dw_}; }
  std::string name() const override { return "RbfOutput"; }
  std::size_t output_dim(std::size_t) const override { return num_classes_; }

  /// Prototype matrix (num_classes x in_dim) — the learned class
  /// "centroids" in embedding space. Mutable access supports
  /// physics-informed initialization (e.g. at quantizer cell centers).
  const Mat& prototypes() const { return w_; }
  Mat& prototypes() { return w_; }

 private:
  std::size_t in_dim_, num_classes_;
  Mat w_;   // num_classes x in_dim
  Mat dw_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_RBF_OUTPUT_H_
