// Binary (de)serialization of network parameters, so trained localization
// models can be shipped to a device and reloaded (the paper's deployment
// story targets energy-constrained mobile hardware).
//
// Two formats live here:
//  * the flat weights file ("NOBL1"): all tensors of one network, in
//    `params()` + `state()` order — save_weights / load_weights;
//  * the named-section container ("NOBS1"): a tagged sequence of
//    (name, payload) binary sections with random access on read. Model
//    artifacts (serve/artifact.h) are built on it, storing config,
//    quantizer, normalization stats and each network in its own section.
//
// Both formats store native-endian scalars: artifacts are device-local
// deployment state, not an interchange format.
#ifndef NOBLE_NN_SERIALIZE_H_
#define NOBLE_NN_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nn/network.h"

namespace noble::nn {

/// Writes all parameters (in `params()` order) to `path`.
/// Format: magic "NOBL1", u64 tensor count, then per tensor u64 rows, u64
/// cols, raw float32 data. Returns false on I/O failure.
bool save_weights(const Sequential& net, const std::string& path);

/// Loads parameters written by `save_weights` into an architecturally
/// identical network. Strict: fails on bad magic, tensor-count or shape
/// mismatch, truncated tensor data, and trailing bytes after the last
/// tensor. Returns false on any such failure (the network may be left
/// partially overwritten — reload or rebuild before using it).
bool load_weights(Sequential& net, const std::string& path);

/// Append-only little codec for artifact payloads: scalars, strings and
/// matrices serialized into one byte string. The gateway wire protocol
/// (src/gateway/wire.h) frames its message bodies with the same codec.
class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// u64 length + raw bytes.
  void str(std::string_view s);
  /// u64 count + raw float32 data — the RSSI-scan / IMU-segment payload
  /// shape (a mat would waste a dimension on vectors that are always flat).
  void f32v(const std::vector<float>& v);
  /// u64 rows, u64 cols, raw float32 data.
  void mat(const Mat& m);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n);
  std::string buf_;
};

/// Matching reader; every getter returns false on truncation instead of
/// reading past the payload, so corrupt artifacts fail cleanly.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool f64(double& v);
  bool str(std::string& s);
  bool f32v(std::vector<float>& v);
  bool mat(Mat& m);

  /// True when the payload has been consumed exactly.
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  bool raw(void* p, std::size_t n);
  std::string_view data_;
  std::size_t pos_ = 0;
};

/// Builder for the "NOBS1" named-section container.
class SectionWriter {
 public:
  /// Appends a section; names must be unique and non-empty.
  void add(std::string name, std::string payload);

  /// Encodes magic + version + section table into one byte string.
  std::string encode() const;

  /// Writes the encoded container to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Parsed view of a "NOBS1" container.
class SectionReader {
 public:
  /// Parses a container image; false on bad magic, unsupported version,
  /// duplicate names or truncation.
  bool parse(std::string data);

  /// Reads and parses `path`; false on I/O or format failure.
  bool read_file(const std::string& path);

  /// Payload of the named section, or nullptr when absent.
  const std::string* find(std::string_view name) const;

  std::size_t count() const { return sections_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Encodes every tensor of `net` (params, then non-trainable state) as one
/// section payload: u64 tensor count + mats.
std::string encode_network(const Sequential& net);

/// Decodes an `encode_network` payload into an architecturally identical
/// network. Returns false on count/shape mismatch, truncation, or trailing
/// bytes.
bool decode_network(Sequential& net, std::string_view payload);

}  // namespace noble::nn

#endif  // NOBLE_NN_SERIALIZE_H_
