// Binary (de)serialization of network parameters, so trained localization
// models can be shipped to a device and reloaded (the paper's deployment
// story targets energy-constrained mobile hardware).
#ifndef NOBLE_NN_SERIALIZE_H_
#define NOBLE_NN_SERIALIZE_H_

#include <string>

#include "nn/network.h"

namespace noble::nn {

/// Writes all parameters (in `params()` order) to `path`.
/// Format: magic "NOBL1", u64 tensor count, then per tensor u64 rows, u64
/// cols, raw float32 data. Returns false on I/O failure.
bool save_weights(Sequential& net, const std::string& path);

/// Loads parameters written by `save_weights` into an architecturally
/// identical network. Returns false on I/O failure or shape mismatch.
bool load_weights(Sequential& net, const std::string& path);

}  // namespace noble::nn

#endif  // NOBLE_NN_SERIALIZE_H_
