// Minibatch training loop with validation-based early stopping.
#ifndef NOBLE_NN_TRAINER_H_
#define NOBLE_NN_TRAINER_H_

#include <functional>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace noble::nn {

/// Hyperparameters for `Trainer::fit`.
struct TrainConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  /// Multiplicative learning-rate decay applied each epoch.
  double lr_decay = 1.0;
  /// Stop if validation loss fails to improve for this many epochs
  /// (0 disables early stopping / validation).
  std::size_t patience = 0;
  /// Seed for minibatch shuffling.
  std::uint64_t shuffle_seed = 1234;
  /// Optional per-epoch observer: (epoch, train_loss, val_loss).
  std::function<void(std::size_t, double, double)> on_epoch;
};

/// Per-fit result summary.
struct TrainResult {
  std::size_t epochs_run = 0;
  double final_train_loss = 0.0;
  double best_val_loss = 0.0;
  std::vector<double> train_loss_history;
  std::vector<double> val_loss_history;
};

/// Drives minibatch SGD over a Sequential with an arbitrary Loss.
class Trainer {
 public:
  Trainer(Optimizer& opt, const Loss& loss, TrainConfig config);

  /// Trains `net` on (x, y); if `x_val` is non-null and patience > 0,
  /// monitors validation loss for early stopping (weights are NOT rolled
  /// back; the paper's protocol selects by final model).
  TrainResult fit(Sequential& net, const Mat& x, const Mat& y, const Mat* x_val = nullptr,
                  const Mat* y_val = nullptr);

  /// Mean loss of `net` on (x, y) without updating parameters.
  double evaluate(Sequential& net, const Mat& x, const Mat& y) const;

 private:
  Optimizer& opt_;
  const Loss& loss_;
  TrainConfig config_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_TRAINER_H_
