#include "nn/serialize.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

namespace noble::nn {

namespace {
constexpr char kWeightsMagic[6] = "NOBL1";
constexpr char kSectionMagic[6] = "NOBS1";
constexpr std::uint32_t kSectionVersion = 1;
}  // namespace

bool save_weights(const Sequential& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kWeightsMagic, sizeof kWeightsMagic);
  auto params = net.params();
  // Non-trainable state (batch-norm running statistics) is appended after
  // the parameters so reloaded models infer identically.
  for (const Mat* s : net.state()) params.push_back(s);
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const Mat* p : params) {
    const std::uint64_t rows = p->rows(), cols = p->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    out.write(reinterpret_cast<const char*>(p->data()),
              static_cast<std::streamsize>(p->size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool load_weights(Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof kWeightsMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kWeightsMagic, sizeof kWeightsMagic) != 0) return false;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  auto params = net.params();
  for (Mat* s : net.state()) params.push_back(s);
  if (!in || count != params.size()) return false;
  for (Mat* p : params) {
    std::uint64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof rows);
    in.read(reinterpret_cast<char*>(&cols), sizeof cols);
    if (!in || rows != p->rows() || cols != p->cols()) return false;
    in.read(reinterpret_cast<char*>(p->data()),
            static_cast<std::streamsize>(p->size() * sizeof(float)));
    if (!in) return false;
  }
  // A well-formed file ends exactly after the last tensor; trailing bytes
  // mean the file was written by something else (or corrupted).
  return in.peek() == std::ifstream::traits_type::eof();
}

// --- ByteWriter / ByteReader -------------------------------------------------

void ByteWriter::raw(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void ByteWriter::u8(std::uint8_t v) { raw(&v, sizeof v); }
void ByteWriter::u32(std::uint32_t v) { raw(&v, sizeof v); }
void ByteWriter::u64(std::uint64_t v) { raw(&v, sizeof v); }
void ByteWriter::f64(double v) { raw(&v, sizeof v); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  raw(s.data(), s.size());
}

void ByteWriter::f32v(const std::vector<float>& v) {
  u64(v.size());
  raw(v.data(), v.size() * sizeof(float));
}

void ByteWriter::mat(const Mat& m) {
  u64(m.rows());
  u64(m.cols());
  raw(m.data(), m.size() * sizeof(float));
}

bool ByteReader::raw(void* p, std::size_t n) {
  if (n > data_.size() - pos_) return false;
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::u8(std::uint8_t& v) { return raw(&v, sizeof v); }
bool ByteReader::u32(std::uint32_t& v) { return raw(&v, sizeof v); }
bool ByteReader::u64(std::uint64_t& v) { return raw(&v, sizeof v); }
bool ByteReader::f64(double& v) { return raw(&v, sizeof v); }

bool ByteReader::str(std::string& s) {
  std::uint64_t n = 0;
  if (!u64(n) || n > data_.size() - pos_) return false;
  s.assign(data_.data() + pos_, static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return true;
}

bool ByteReader::f32v(std::vector<float>& v) {
  std::uint64_t n = 0;
  // Like mat(): reject counts the remaining payload cannot hold before
  // allocating, so a corrupted length fails cleanly instead of by bad_alloc.
  if (!u64(n) || n > (data_.size() - pos_) / sizeof(float)) return false;
  v.resize(static_cast<std::size_t>(n));
  return raw(v.data(), v.size() * sizeof(float));
}

bool ByteReader::mat(Mat& m) {
  std::uint64_t rows = 0, cols = 0;
  if (!u64(rows) || !u64(cols)) return false;
  // Reject sizes the remaining payload cannot possibly hold before
  // allocating, so a corrupted header fails cleanly instead of by bad_alloc.
  const std::uint64_t remaining = data_.size() - pos_;
  if (rows != 0 && cols != 0 &&
      (rows > remaining / sizeof(float) ||
       cols > remaining / (rows * sizeof(float)))) {
    return false;
  }
  m.resize(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  return raw(m.data(), m.size() * sizeof(float));
}

// --- Named-section container -------------------------------------------------

void SectionWriter::add(std::string name, std::string payload) {
  NOBLE_EXPECTS(!name.empty());
  for (const auto& [existing, _] : sections_) NOBLE_EXPECTS(existing != name);
  sections_.emplace_back(std::move(name), std::move(payload));
}

std::string SectionWriter::encode() const {
  ByteWriter w;
  w.u32(kSectionVersion);
  w.u64(sections_.size());
  for (const auto& [name, payload] : sections_) {
    w.str(name);
    w.str(payload);
  }
  std::string out(kSectionMagic, sizeof kSectionMagic);
  out += w.bytes();
  return out;
}

bool SectionWriter::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string data = encode();
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool SectionReader::parse(std::string data) {
  sections_.clear();
  if (data.size() < sizeof kSectionMagic ||
      std::memcmp(data.data(), kSectionMagic, sizeof kSectionMagic) != 0) {
    return false;
  }
  ByteReader r(std::string_view(data).substr(sizeof kSectionMagic));
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!r.u32(version) || version != kSectionVersion || !r.u64(count)) return false;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name, payload;
    if (!r.str(name) || name.empty() || !r.str(payload)) return false;
    if (find(name) != nullptr) return false;
    sections_.emplace_back(std::move(name), std::move(payload));
  }
  return r.exhausted();
}

bool SectionReader::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in) return false;
  return parse(std::move(buf).str());
}

const std::string* SectionReader::find(std::string_view name) const {
  const auto it = std::find_if(sections_.begin(), sections_.end(),
                               [&](const auto& s) { return s.first == name; });
  return it == sections_.end() ? nullptr : &it->second;
}

// --- Whole-network codec -----------------------------------------------------

std::string encode_network(const Sequential& net) {
  auto tensors = net.params();
  for (const Mat* s : net.state()) tensors.push_back(s);
  ByteWriter w;
  w.u64(tensors.size());
  for (const Mat* t : tensors) w.mat(*t);
  return w.take();
}

bool decode_network(Sequential& net, std::string_view payload) {
  auto tensors = net.params();
  for (Mat* s : net.state()) tensors.push_back(s);
  ByteReader r(payload);
  std::uint64_t count = 0;
  if (!r.u64(count) || count != tensors.size()) return false;
  for (Mat* t : tensors) {
    Mat loaded;
    if (!r.mat(loaded)) return false;
    if (loaded.rows() != t->rows() || loaded.cols() != t->cols()) return false;
    *t = std::move(loaded);
  }
  return r.exhausted();
}

}  // namespace noble::nn
