#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace noble::nn {

namespace {
constexpr char kMagic[6] = "NOBL1";
}

bool save_weights(Sequential& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(kMagic, sizeof kMagic);
  auto params = net.params();
  // Non-trainable state (batch-norm running statistics) is appended after
  // the parameters so reloaded models infer identically.
  for (Mat* s : net.state()) params.push_back(s);
  const std::uint64_t count = params.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const Mat* p : params) {
    const std::uint64_t rows = p->rows(), cols = p->cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    out.write(reinterpret_cast<const char*>(p->data()),
              static_cast<std::streamsize>(p->size() * sizeof(float)));
  }
  return static_cast<bool>(out);
}

bool load_weights(Sequential& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) return false;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  auto params = net.params();
  for (Mat* s : net.state()) params.push_back(s);
  if (!in || count != params.size()) return false;
  for (Mat* p : params) {
    std::uint64_t rows = 0, cols = 0;
    in.read(reinterpret_cast<char*>(&rows), sizeof rows);
    in.read(reinterpret_cast<char*>(&cols), sizeof cols);
    if (!in || rows != p->rows() || cols != p->cols()) return false;
    in.read(reinterpret_cast<char*>(p->data()),
            static_cast<std::streamsize>(p->size() * sizeof(float)));
    if (!in) return false;
  }
  return true;
}

}  // namespace noble::nn
