#include "nn/activations.h"

#include <cmath>

namespace noble::nn {

void Tanh::forward(const Mat& x, Mat& y, bool /*training*/) {
  infer(x, y);
  y_cache_ = y;
}

void Tanh::infer(const Mat& x, Mat& y) const {
  y.resize(x.rows(), x.cols());
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = std::tanh(px[i]);
}

void Tanh::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(y_cache_.rows() == dy.rows() && y_cache_.cols() == dy.cols());
  (void)x;
  dx.resize(dy.rows(), dy.cols());
  const float* py = y_cache_.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (std::size_t i = 0; i < dy.size(); ++i) pdx[i] = pdy[i] * (1.0f - py[i] * py[i]);
}

void Relu::forward(const Mat& x, Mat& y, bool /*training*/) { infer(x, y); }

void Relu::infer(const Mat& x, Mat& y) const {
  y.resize(x.rows(), x.cols());
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = px[i] > 0.0f ? px[i] : 0.0f;
}

void Relu::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(x.rows() == dy.rows() && x.cols() == dy.cols());
  dx.resize(dy.rows(), dy.cols());
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (std::size_t i = 0; i < dy.size(); ++i) pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
}

void Sigmoid::forward(const Mat& x, Mat& y, bool /*training*/) {
  infer(x, y);
  y_cache_ = y;
}

void Sigmoid::infer(const Mat& x, Mat& y) const {
  y.resize(x.rows(), x.cols());
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) py[i] = 1.0f / (1.0f + std::exp(-px[i]));
}

void Sigmoid::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(y_cache_.rows() == dy.rows() && y_cache_.cols() == dy.cols());
  (void)x;
  dx.resize(dy.rows(), dy.cols());
  const float* py = y_cache_.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (std::size_t i = 0; i < dy.size(); ++i) pdx[i] = pdy[i] * py[i] * (1.0f - py[i]);
}

}  // namespace noble::nn
