#include "nn/rbf_output.h"

namespace noble::nn {

RbfOutput::RbfOutput(std::size_t in_dim, std::size_t num_classes, Rng& rng,
                     float init_scale)
    : in_dim_(in_dim),
      num_classes_(num_classes),
      w_(num_classes, in_dim),
      dw_(num_classes, in_dim) {
  NOBLE_EXPECTS(in_dim > 0 && num_classes > 0);
  float* p = w_.data();
  for (std::size_t i = 0; i < w_.size(); ++i)
    p[i] = static_cast<float>(rng.normal(0.0, init_scale));
}

void RbfOutput::forward(const Mat& x, Mat& y, bool /*training*/) { infer(x, y); }

void RbfOutput::infer(const Mat& x, Mat& y) const {
  NOBLE_EXPECTS(x.cols() == in_dim_);
  const std::size_t n = x.rows();
  y.resize(n, num_classes_);
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = x.row(i);
    float* yi = y.row(i);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const float* wc = w_.row(c);
      double s = 0.0;
      for (std::size_t d = 0; d < in_dim_; ++d) {
        const double diff = static_cast<double>(z[d]) - wc[d];
        s += diff * diff;
      }
      yi[c] = static_cast<float>(-0.5 * s);
    }
  }
}

void RbfOutput::backward(const Mat& x, const Mat& dy, Mat& dx) {
  NOBLE_EXPECTS(x.cols() == in_dim_ && dy.cols() == num_classes_);
  NOBLE_EXPECTS(x.rows() == dy.rows());
  const std::size_t n = x.rows();
  dx.resize(n, in_dim_);
  dx.fill(0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    const float* z = x.row(i);
    const float* g = dy.row(i);
    float* dz = dx.row(i);
    for (std::size_t c = 0; c < num_classes_; ++c) {
      const float gc = g[c];
      if (gc == 0.0f) continue;
      const float* wc = w_.row(c);
      float* dwc = dw_.row(c);
      for (std::size_t d = 0; d < in_dim_; ++d) {
        const float diff = z[d] - wc[d];
        // d logits_c / dz_d = -(z_d - w_cd); d logits_c / dw_cd = z_d - w_cd.
        dz[d] += gc * (-diff);
        dwc[d] += gc * diff;
      }
    }
  }
}

}  // namespace noble::nn
