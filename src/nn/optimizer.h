// First-order optimizers. State is keyed by the order of the parameter list,
// which is stable for a fixed network architecture.
#ifndef NOBLE_NN_OPTIMIZER_H_
#define NOBLE_NN_OPTIMIZER_H_

#include <vector>

#include "linalg/matrix.h"

namespace noble::nn {

using linalg::Mat;

/// Interface: applies one update step given aligned parameter/gradient lists.
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Updates each `params[i]` in place using `grads[i]`.
  virtual void step(const std::vector<Mat*>& params, const std::vector<Mat*>& grads) = 0;
  /// Current learning rate (schedulers mutate it between epochs).
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// SGD with classical momentum and optional decoupled weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.9, double weight_decay = 0.0);
  void step(const std::vector<Mat*>& params, const std::vector<Mat*>& grads) override;

 private:
  double momentum_, weight_decay_;
  std::vector<Mat> velocity_;
};

/// Adam (Kingma & Ba) with bias correction and optional weight decay.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999, double eps = 1e-8,
                double weight_decay = 0.0);
  void step(const std::vector<Mat*>& params, const std::vector<Mat*>& grads) override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  long t_ = 0;
  std::vector<Mat> m_, v_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_OPTIMIZER_H_
