// Sequential network container.
#ifndef NOBLE_NN_NETWORK_H_
#define NOBLE_NN_NETWORK_H_

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace noble::nn {

/// A stack of layers applied in order, with cached activations so a full
/// forward/backward pass can be driven by the trainer (or by composite models
/// such as the IMU net, which wires two Sequentials together — §V-B).
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// Appends a layer; returns a reference for further configuration.
  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  /// Adds an already-constructed layer.
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  /// Forward pass, caching intermediate activations for `backward`.
  /// Returns the output activation.
  const Mat& forward(const Mat& x, bool training);

  /// Backprop of dL/d(output); accumulates parameter gradients and writes
  /// dL/d(input) into `dx` (usable by upstream composite models).
  void backward(const Mat& dy, Mat& dx);

  /// Convenience inference (evaluation mode) through the const `infer` path
  /// of every layer: mutates nothing, so a const network is safe to share
  /// across concurrently predicting threads.
  Mat predict(const Mat& x) const;

  /// All trainable parameters in layer order.
  std::vector<Mat*> params();
  std::vector<const Mat*> params() const;
  /// Gradients aligned with `params()`.
  std::vector<Mat*> grads();
  /// Non-trainable state tensors (batch-norm running stats) for
  /// serialization.
  std::vector<Mat*> state();
  std::vector<const Mat*> state() const;
  /// Zeroes all parameter gradients.
  void zero_grads();
  /// Number of scalar trainable parameters.
  std::size_t parameter_count() const;
  /// Multiply-accumulate count of one forward pass for a single input row
  /// (dense layers only) — consumed by the energy model (§IV-C).
  std::size_t macs_per_inference(std::size_t input_dim) const;

  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Mat> acts_;  // acts_[0] = input copy, acts_[i+1] = layer i output
};

}  // namespace noble::nn

#endif  // NOBLE_NN_NETWORK_H_
