// Batch normalization [21] over feature columns (1-D batch norm).
#ifndef NOBLE_NN_BATCHNORM_H_
#define NOBLE_NN_BATCHNORM_H_

#include "nn/layer.h"

namespace noble::nn {

/// Per-feature batch normalization with learnable scale/shift and running
/// statistics for inference. Matches the standard Ioffe-Szegedy formulation.
class BatchNorm1d : public Layer {
 public:
  /// `dim` features; `momentum` is the running-stats EMA factor.
  explicit BatchNorm1d(std::size_t dim, float momentum = 0.9f, float eps = 1e-5f);

  void forward(const Mat& x, Mat& y, bool training) override;
  void infer(const Mat& x, Mat& y) const override;
  void backward(const Mat& x, const Mat& dy, Mat& dx) override;
  std::vector<Mat*> params() override { return {&gamma_, &beta_}; }
  std::vector<const Mat*> params() const override { return {&gamma_, &beta_}; }
  std::vector<Mat*> grads() override { return {&dgamma_, &dbeta_}; }
  std::vector<Mat*> state() override { return {&running_mean_, &running_var_}; }
  std::vector<const Mat*> state() const override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override { return "BatchNorm1d"; }
  std::size_t output_dim(std::size_t) const override { return dim_; }

  /// Running mean/var used at inference; exposed for serialization.
  Mat& running_mean() { return running_mean_; }
  Mat& running_var() { return running_var_; }
  const Mat& running_mean() const { return running_mean_; }
  const Mat& running_var() const { return running_var_; }

  /// Learned scale/shift and the variance epsilon — everything the serving
  /// optimizer needs to fold this layer into a per-channel affine epilogue.
  const Mat& gamma() const { return gamma_; }
  const Mat& beta() const { return beta_; }
  float eps() const { return eps_; }

 private:
  std::size_t dim_;
  float momentum_, eps_;
  Mat gamma_, beta_, dgamma_, dbeta_;
  Mat running_mean_, running_var_;
  // Forward caches (training mode).
  Mat x_hat_;
  std::vector<float> inv_std_;
};

}  // namespace noble::nn

#endif  // NOBLE_NN_BATCHNORM_H_
