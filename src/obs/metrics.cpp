#include "obs/metrics.h"

#include <cstdio>

#include "common/check.h"
#include "nn/serialize.h"

namespace noble::obs {

namespace {

// "NOBM" tag in the high three bytes | format version in the low byte,
// mirroring the gateway wire magic ("NGW" | version) convention.
constexpr std::uint32_t kSnapshotTag = 0x4E424D00u;  // 'N' 'B' 'M' in a u32
constexpr std::uint32_t kSnapshotVersion = 1;
constexpr std::uint32_t kSnapshotMagic = kSnapshotTag | kSnapshotVersion;

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    out += labels[i].second;
    out += '"';
  }
  out += '}';
  return out;
}

void append_line_u64(std::string& out, const std::string& name, const Labels& labels,
                     std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, " %llu\n", static_cast<unsigned long long>(value));
  out += name;
  out += render_labels(labels);
  out += buf;
}

void append_line_f(std::string& out, const std::string& name, const Labels& labels,
                   double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, " %.1f\n", value);
  out += name;
  out += render_labels(labels);
  out += buf;
}

}  // namespace

HistogramMetric::HistogramMetric(const Histogram& layout) {
  shards_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(layout));
  }
}

void HistogramMetric::record(double x) {
  // Same round-robin thread striping as Counter: a worker always hits the
  // same shard, two workers rarely share one.
  static std::atomic<std::uint32_t> next_slot{0};
  thread_local std::uint32_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[slot % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.hist.record(x);
}

Histogram HistogramMetric::snapshot() const {
  Histogram out = [&] {
    std::lock_guard<std::mutex> lock(shards_[0]->mu);
    return shards_[0]->hist;
  }();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    out.merge(shards_[i]->hist);
  }
  return out;
}

void MetricsSnapshot::counter(std::string name, std::uint64_t value, Labels labels) {
  MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = Kind::kCounter;
  s.counter_value = value;
  samples.push_back(std::move(s));
}

void MetricsSnapshot::gauge(std::string name, double value, Labels labels) {
  MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = Kind::kGauge;
  s.gauge_value = value;
  samples.push_back(std::move(s));
}

void MetricsSnapshot::gauge_int(std::string name, std::uint64_t value, Labels labels) {
  gauge(std::move(name), static_cast<double>(value), std::move(labels));
  samples.back().integer_gauge = true;
}

void MetricsSnapshot::histogram(std::string name, Histogram hist, Labels labels) {
  MetricSample s;
  s.name = std::move(name);
  s.labels = std::move(labels);
  s.kind = Kind::kHistogram;
  s.hist = std::move(hist);
  samples.push_back(std::move(s));
}

void MetricsSnapshot::append(const MetricsSnapshot& other) {
  samples.insert(samples.end(), other.samples.begin(), other.samples.end());
}

const MetricSample* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricSample& s : samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          const Labels& labels) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Instrument& Registry::find_or_create(std::string name, Labels labels, Kind kind,
                                               const Histogram* layout) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& inst : instruments_) {
    if (inst->name == name && inst->labels == labels) {
      NOBLE_EXPECTS(inst->kind == kind);
      return *inst;
    }
  }
  auto inst = std::make_unique<Instrument>();
  inst->name = std::move(name);
  inst->labels = std::move(labels);
  inst->kind = kind;
  switch (kind) {
    case Kind::kCounter: inst->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: inst->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      inst->hist = std::make_unique<HistogramMetric>(*layout);
      break;
  }
  instruments_.push_back(std::move(inst));
  return *instruments_.back();
}

Counter& Registry::counter(std::string name, Labels labels) {
  return *find_or_create(std::move(name), std::move(labels), Kind::kCounter, nullptr)
              .counter;
}

Gauge& Registry::gauge(std::string name, Labels labels) {
  return *find_or_create(std::move(name), std::move(labels), Kind::kGauge, nullptr).gauge;
}

HistogramMetric& Registry::histogram(std::string name, const Histogram& layout,
                                     Labels labels) {
  return *find_or_create(std::move(name), std::move(labels), Kind::kHistogram, &layout)
              .hist;
}

std::uint64_t Registry::add_collector(std::function<void(MetricsSnapshot&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void Registry::remove_collector(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
    if (it->first == id) {
      collectors_.erase(it);
      return;
    }
  }
}

MetricsSnapshot Registry::collect() const {
  // Sample instruments outside the registry lock: instruments are never
  // removed and the vector only grows, but collector callbacks may re-enter
  // (a collector scraping a router that lazily registers a gauge), so copy
  // the stable views first, then drop the lock.
  std::vector<const Instrument*> instruments;
  std::vector<std::function<void(MetricsSnapshot&)>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    instruments.reserve(instruments_.size());
    for (const auto& inst : instruments_) instruments.push_back(inst.get());
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  MetricsSnapshot out;
  out.samples.reserve(instruments.size());
  for (const Instrument* inst : instruments) {
    switch (inst->kind) {
      case Kind::kCounter:
        out.counter(inst->name, inst->counter->value(), inst->labels);
        break;
      case Kind::kGauge:
        out.gauge(inst->name, inst->gauge->value(), inst->labels);
        break;
      case Kind::kHistogram:
        out.histogram(inst->name, inst->hist->snapshot(), inst->labels);
        break;
    }
  }
  for (const auto& fn : collectors) fn(out);
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.samples.size() * 48);
  for (const MetricSample& s : snapshot.samples) {
    switch (s.kind) {
      case Kind::kCounter:
        append_line_u64(out, s.name, s.labels, s.counter_value);
        break;
      case Kind::kGauge:
        // Integer levels (queue depths, window sizes) print as bare
        // integers, continuous ones as %.1f — the page stays byte-shaped
        // like the former hand-assembled one.
        if (s.integer_gauge) {
          append_line_u64(out, s.name, s.labels,
                          static_cast<std::uint64_t>(s.gauge_value));
        } else {
          append_line_f(out, s.name, s.labels, s.gauge_value);
        }
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.hist;
        const LatencySummary q = summarize_latency_us(h);
        for (const auto& [quantile, value] :
             {std::pair<const char*, double>{"0.5", q.p50_us},
              {"0.95", q.p95_us},
              {"0.99", q.p99_us}}) {
          Labels labels = s.labels;
          labels.emplace_back("quantile", quantile);
          append_line_f(out, s.name, labels, value);
        }
        append_line_f(out, s.name + "_sum", s.labels, h.sum_recorded());
        append_line_u64(out, s.name + "_count", s.labels, h.count());
        break;
      }
    }
  }
  return out;
}

std::string encode_snapshot(const MetricsSnapshot& snapshot) {
  nn::ByteWriter w;
  w.u32(kSnapshotMagic);
  w.u64(snapshot.samples.size());
  for (const MetricSample& s : snapshot.samples) {
    w.str(s.name);
    w.u64(s.labels.size());
    for (const auto& [k, v] : s.labels) {
      w.str(k);
      w.str(v);
    }
    w.u8(static_cast<std::uint8_t>(s.kind));
    switch (s.kind) {
      case Kind::kCounter: w.u64(s.counter_value); break;
      case Kind::kGauge:
        w.f64(s.gauge_value);
        w.u8(s.integer_gauge ? 1 : 0);
        break;
      case Kind::kHistogram: {
        const Histogram& h = *s.hist;
        w.f64(h.lower_bound());
        w.f64(h.upper_bound());
        w.u64(h.num_bins());
        w.u64(h.underflow_count());
        for (std::size_t i = 0; i < h.num_bins(); ++i) w.u64(h.bin_count(i));
        w.u64(h.overflow_count());
        w.u64(h.count());
        w.f64(h.sum_recorded());
        w.f64(h.min_recorded());
        w.f64(h.max_recorded());
        break;
      }
    }
  }
  return w.take();
}

std::optional<MetricsSnapshot> decode_snapshot(std::string_view bytes) {
  nn::ByteReader r(bytes);
  std::uint32_t magic = 0;
  if (!r.u32(magic) || magic != kSnapshotMagic) return std::nullopt;
  std::uint64_t count = 0;
  if (!r.u64(count)) return std::nullopt;
  // Each sample costs at least ~11 bytes on the wire; a count that cannot
  // fit the payload is a lying header, not a big snapshot.
  if (count > bytes.size()) return std::nullopt;
  MetricsSnapshot out;
  out.samples.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    MetricSample s;
    if (!r.str(s.name)) return std::nullopt;
    std::uint64_t num_labels = 0;
    if (!r.u64(num_labels) || num_labels > bytes.size()) return std::nullopt;
    s.labels.reserve(num_labels);
    for (std::uint64_t l = 0; l < num_labels; ++l) {
      std::string k, v;
      if (!r.str(k) || !r.str(v)) return std::nullopt;
      s.labels.emplace_back(std::move(k), std::move(v));
    }
    std::uint8_t kind = 0;
    if (!r.u8(kind) || kind > static_cast<std::uint8_t>(Kind::kHistogram)) {
      return std::nullopt;
    }
    s.kind = static_cast<Kind>(kind);
    switch (s.kind) {
      case Kind::kCounter:
        if (!r.u64(s.counter_value)) return std::nullopt;
        break;
      case Kind::kGauge: {
        std::uint8_t integral = 0;
        if (!r.f64(s.gauge_value) || !r.u8(integral) || integral > 1) return std::nullopt;
        s.integer_gauge = integral == 1;
        break;
      }
      case Kind::kHistogram: {
        double lo = 0.0, hi = 0.0;
        std::uint64_t num_bins = 0;
        if (!r.f64(lo) || !r.f64(hi) || !r.u64(num_bins)) return std::nullopt;
        if (!(lo > 0.0) || !(hi > lo) || num_bins == 0 || num_bins > bytes.size()) {
          return std::nullopt;
        }
        std::vector<std::uint64_t> counts(num_bins + 2, 0);
        for (auto& c : counts) {
          if (!r.u64(c)) return std::nullopt;
        }
        std::uint64_t total = 0;
        double sum = 0.0, min_rec = 0.0, max_rec = 0.0;
        if (!r.u64(total) || !r.f64(sum) || !r.f64(min_rec) || !r.f64(max_rec)) {
          return std::nullopt;
        }
        s.hist = Histogram::from_parts(lo, hi, num_bins, std::move(counts), total, sum,
                                       min_rec, max_rec);
        break;
      }
    }
    out.samples.push_back(std::move(s));
  }
  if (!r.exhausted()) return std::nullopt;
  return out;
}

}  // namespace noble::obs
