// noble::obs — the unified metrics layer every serving tier reports into.
//
// Three instrument kinds cover the stack's telemetry:
//  * Counter   — monotonic event totals (requests, rejections, cache hits).
//    Increments land on a thread-striped array of cache-line-separated
//    atomics, so the hot path is one relaxed fetch_add with no sharing
//    between submitter threads; `value()` folds the stripes on the (cold)
//    scrape path.
//  * Gauge     — a point-in-time level (queue depth, inflight window).
//  * HistogramMetric — a sharded `noble::Histogram` (distribution of
//    latencies / batch sizes) with per-shard locking so concurrent
//    `record()` calls from worker threads rarely contend.
//
// A `Registry` owns named instruments keyed by (name, label set) and turns
// them — plus any registered collector callbacks — into a `MetricsSnapshot`:
// a flat, ordered list of samples that renders to either exposition format:
//  * `render_prometheus`  — the plaintext scrape page (`name{k="v"} value`),
//    field-compatible with the former hand-assembled `Gateway::stats_text`;
//  * `encode_snapshot` / `decode_snapshot` — a versioned binary image on the
//    repo-wide `ByteWriter`/`ByteReader` codec, carrying full histogram bin
//    data (not just summary quantiles) so a remote scraper can merge,
//    window-delta, or re-quantile without loss.
//
// Instruments whose lifetime matches the process register in
// `Registry::global()` (the tracer's stage histograms live there). Tiers
// that exist many-per-process (engines, gateways — unit tests stand up
// dozens per binary) keep their instruments as *members* and splice their
// samples into a snapshot at scrape time, so one test's traffic never
// bleeds into another's scrape page.
#ifndef NOBLE_OBS_METRICS_H_
#define NOBLE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace noble::obs {

/// Label set attached to an instrument, rendered in insertion order
/// (`{shard="bldg-A",engine="0"}`). Keep label cardinality bounded — every
/// distinct label set is a distinct instrument.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic counter with thread-striped increments. Each thread hashes to
/// one of `kStripes` cache-line-aligned atomics; `value()` sums them with
/// relaxed loads. `add`/`sub` may make an individual stripe wrap below zero
/// (an admission rollback on a different thread than the admit), but the
/// mod-2^64 stripe sum is always exact.
class Counter {
 public:
  static constexpr std::size_t kStripes = 8;

  void inc(std::uint64_t n = 1) { stripe().fetch_add(n, std::memory_order_relaxed); }
  void sub(std::uint64_t n = 1) { stripe().fetch_sub(n, std::memory_order_relaxed); }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : stripes_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };

  std::atomic<std::uint64_t>& stripe() {
    // One stripe per thread, assigned round-robin on first touch: stable,
    // cheap (a thread_local read), and collision-free up to kStripes threads.
    static std::atomic<std::uint32_t> next_slot{0};
    thread_local std::uint32_t slot = next_slot.fetch_add(1, std::memory_order_relaxed);
    return stripes_[slot % kStripes].v;
  }

  Stripe stripes_[kStripes];
};

/// Point-in-time level. `set` is a plain store; `add` is a CAS loop (works
/// on every toolchain regardless of std::atomic<double>::fetch_add support).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution instrument: a `noble::Histogram` striped across shards,
/// each behind its own mutex. Worker threads recording into different
/// shards never contend; `snapshot()` merges all shards under their locks.
class HistogramMetric {
 public:
  static constexpr std::size_t kShards = 4;

  /// `layout` fixes the bin structure for every shard (all shards must
  /// share it so the merge in snapshot() is exact).
  explicit HistogramMetric(const Histogram& layout);

  void record(double x);

  /// Merged view of all shards at one instant per shard (shards are locked
  /// in turn, not globally, so a concurrent record may land between shard
  /// visits — totals are eventually consistent, never torn).
  Histogram snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    Histogram hist;
    explicit Shard(const Histogram& layout) : hist(layout) {}
  };
  std::vector<std::unique_ptr<Shard>> shards_;
};

enum class Kind : std::uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One exposition sample: a named value with labels. Counters carry
/// `counter_value` (rendered as a bare integer), gauges `gauge_value`
/// (rendered `%.1f`, or as a bare integer when `integer_gauge` — queue
/// depths keep the former page's shape), histograms a full
/// `noble::Histogram`.
struct MetricSample {
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  bool integer_gauge = false;
  std::optional<Histogram> hist;
};

/// Flat ordered sample list — the unit of exposition. Build one per scrape;
/// samples render in insertion order.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  void counter(std::string name, std::uint64_t value, Labels labels = {});
  void gauge(std::string name, double value, Labels labels = {});
  /// Integer-valued gauge (queue depths, window sizes): semantically a
  /// level, rendered as a bare integer like the former scrape page did.
  void gauge_int(std::string name, std::uint64_t value, Labels labels = {});
  void histogram(std::string name, Histogram hist, Labels labels = {});

  /// Appends every sample of `other` (registry samples after tier-local
  /// ones, say).
  void append(const MetricsSnapshot& other);

  /// First sample with this name (and labels, when given); nullptr if none.
  const MetricSample* find(std::string_view name) const;
  const MetricSample* find(std::string_view name, const Labels& labels) const;
};

/// Owner of named instruments plus collector callbacks. Instantiable for
/// tests; `global()` is the process-wide instance where process-lifetime
/// instruments (the tracer's stage histograms) live.
///
/// `counter`/`gauge`/`histogram` register on first use and return the same
/// instrument for the same (name, labels) thereafter — callers keep the
/// returned reference and hit it lock-free. Kind collisions on a name+label
/// key are a programming error (checked).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(std::string name, Labels labels = {});
  Gauge& gauge(std::string name, Labels labels = {});
  HistogramMetric& histogram(std::string name, const Histogram& layout, Labels labels = {});

  /// Registers a callback that appends samples at collect() time — for
  /// values that only exist as derived state (a struct snapshot, a remote
  /// view). Returns an id for remove_collector.
  std::uint64_t add_collector(std::function<void(MetricsSnapshot&)> fn);
  void remove_collector(std::uint64_t id);

  /// Samples every registered instrument (registration order), then runs
  /// collectors (registration order). Each instrument is read at its own
  /// instant — the snapshot is a consistent *per-instrument* view, not a
  /// global atomic cut.
  MetricsSnapshot collect() const;

 private:
  struct Instrument {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> hist;
  };

  Instrument& find_or_create(std::string name, Labels labels, Kind kind,
                             const Histogram* layout);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Instrument>> instruments_;
  std::vector<std::pair<std::uint64_t, std::function<void(MetricsSnapshot&)>>> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// Prometheus-style text exposition. Counters and integer gauges render as
/// bare integers, float gauges as `%.1f` — both exactly as the former
/// hand-assembled scrape page did (existing test needles keep matching).
/// Histograms render summary-style: `name{quantile="0.5"} v` (p50/p95/p99)
/// plus `name_sum` / `name_count`, with instrument labels merged in before
/// the quantile label.
std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Versioned binary exposition on the repo codec. Carries full histogram
/// bin data so the scraper can delta and re-quantile. Layout: u32 magic
/// ("NOBM" | version), u64 sample count, then per sample: name, labels,
/// kind tag, kind-specific payload.
std::string encode_snapshot(const MetricsSnapshot& snapshot);

/// Decodes an `encode_snapshot` image. Returns nullopt on bad magic,
/// unsupported version, truncation, or trailing bytes.
std::optional<MetricsSnapshot> decode_snapshot(std::string_view bytes);

}  // namespace noble::obs

#endif  // NOBLE_OBS_METRICS_H_
