#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/config.h"

namespace noble::obs {

namespace {

// SplitMix64 finalizer: a full-avalanche 64-bit mix, so consecutive
// sequence numbers land uniformly in [0, 2^64).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr Mark kStageStart[kNumStages] = {Mark::kRecv,     Mark::kSubmit,
                                          Mark::kAdmitted, Mark::kDequeued,
                                          Mark::kAssembled, Mark::kComputed};
constexpr Mark kStageEnd[kNumStages] = {Mark::kSubmit,    Mark::kAdmitted,
                                        Mark::kDequeued,  Mark::kAssembled,
                                        Mark::kComputed,  Mark::kResponded};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kDecode: return "decode";
    case Stage::kAdmission: return "admission";
    case Stage::kQueueWait: return "queue_wait";
    case Stage::kBatchAssembly: return "batch_assembly";
    case Stage::kCompute: return "compute";
    case Stage::kRespond: return "respond";
    case Stage::kNumStages: break;
  }
  return "?";
}

std::uint64_t Trace::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double Trace::stage_us(Stage stage) const {
  const std::uint64_t a = mark_ns(kStageStart[static_cast<std::size_t>(stage)]);
  const std::uint64_t b = mark_ns(kStageEnd[static_cast<std::size_t>(stage)]);
  if (a == 0 || b == 0 || b < a) return -1.0;
  return static_cast<double>(b - a) * 1e-3;
}

double Trace::e2e_us() const {
  const std::uint64_t start =
      mark_ns(Mark::kRecv) != 0 ? mark_ns(Mark::kRecv) : mark_ns(Mark::kSubmit);
  const std::uint64_t end = mark_ns(Mark::kResponded);
  if (start == 0 || end == 0 || end < start) return -1.0;
  return static_cast<double>(end - start) * 1e-3;
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(round_up_pow2(capacity == 0 ? 1 : capacity)) {}

void TraceRing::push(const TraceRecord& rec) {
  const std::uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[pos & (slots_.size() - 1)];
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  // Claim by moving seq to odd. A slot mid-write (odd) or lost CAS means a
  // concurrent writer wrapped onto the same slot: drop, it has fresh data.
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acq_rel)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot.id.store(rec.id, std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumMarks; ++i) {
    slot.marks[i].store(rec.marks_ns[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1) != 0) continue;  // empty or mid-write
    TraceRecord rec;
    rec.id = slot.id.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kNumMarks; ++i) {
      rec.marks_ns[i] = slot.marks[i].load(std::memory_order_relaxed);
    }
    if (slot.seq.load(std::memory_order_acquire) != before) continue;  // torn
    out.push_back(rec);
  }
  return out;
}

TraceConfig TraceConfig::from_env() {
  TraceConfig config;
  config.enabled = env_int("NOBLE_TRACE", 1) != 0;
  config.sample_rate = env_double("NOBLE_TRACE_SAMPLE", 0.01);
  config.slow_us =
      static_cast<std::uint64_t>(std::max(0L, env_int("NOBLE_TRACE_SLOW_US", 0)));
  config.seed = static_cast<std::uint64_t>(
      env_int("NOBLE_TRACE_SEED", static_cast<long>(config.seed & 0x7fffffff)));
  return config;
}

bool TraceSampler::decide(std::uint64_t seed, std::uint64_t n, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // mix64 is uniform on [0, 2^64); compare against rate scaled to the same
  // range. 2^64 as a double is exact (a power of two).
  return static_cast<double>(mix64(seed ^ n)) < rate * 18446744073709551616.0;
}

void TraceSampler::configure(std::uint64_t seed, double rate) {
  seed_ = seed;
  rate_ = rate;
  n_.store(0, std::memory_order_relaxed);
}

Tracer::Tracer(Registry& registry, std::size_t ring_capacity) : ring_(ring_capacity) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    stage_hist_[i] =
        &registry.histogram("noble_stage_latency_us", Histogram::latency_us(),
                            {{"stage", stage_name(static_cast<Stage>(i))}});
  }
  e2e_hist_ = &registry.histogram("noble_trace_e2e_us", Histogram::latency_us());
  started_ = &registry.counter("noble_traces_started");
  finished_ = &registry.counter("noble_traces_finished");
  sampled_ = &registry.counter("noble_traces_sampled");
  slow_ = &registry.counter("noble_traces_slow");
  configure(TraceConfig{});
}

Tracer& Tracer::global() {
  static Tracer* instance = [] {
    auto* t = new Tracer(Registry::global());
    t->configure(TraceConfig::from_env());
    return t;
  }();
  return *instance;
}

void Tracer::configure(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(config_mu_);
  config_ = config;
  enabled_.store(config.enabled, std::memory_order_relaxed);
  slow_ns_.store(config.slow_us * 1000, std::memory_order_relaxed);
  sampler_.configure(config.seed, config.sample_rate);
}

TraceConfig Tracer::config() const {
  std::lock_guard<std::mutex> lock(config_mu_);
  return config_;
}

std::shared_ptr<Trace> Tracer::start(std::uint64_t id) {
  if (!enabled()) return nullptr;
  auto trace = std::make_shared<Trace>();
  trace->id = id;
  trace->sampled = sampler_.next();
  started_->inc();
  return trace;
}

void Tracer::finish(const Trace& trace) {
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const double us = trace.stage_us(static_cast<Stage>(i));
    if (us >= 0.0) stage_hist_[i]->record(us);
  }
  const double e2e = trace.e2e_us();
  if (e2e >= 0.0) e2e_hist_->record(e2e);
  finished_->inc();

  if (trace.sampled) {
    TraceRecord rec;
    rec.id = trace.id;
    rec.marks_ns = trace.marks_ns;
    ring_.push(rec);
    sampled_->inc();
  }

  const std::uint64_t slow_ns = slow_ns_.load(std::memory_order_relaxed);
  if (slow_ns > 0 && e2e >= 0.0 &&
      e2e * 1e3 >= static_cast<double>(slow_ns)) {
    slow_->inc();
    char line[384];
    int n = std::snprintf(line, sizeof line,
                          "[noble.trace] slow request id=%llu e2e=%.1fus",
                          static_cast<unsigned long long>(trace.id), e2e);
    for (std::size_t i = 0; i < kNumStages && n > 0 &&
                            static_cast<std::size_t>(n) < sizeof line;
         ++i) {
      const double us = trace.stage_us(static_cast<Stage>(i));
      if (us < 0.0) continue;
      n += std::snprintf(line + n, sizeof line - static_cast<std::size_t>(n),
                         " %s=%.1fus", stage_name(static_cast<Stage>(i)), us);
    }
    std::fprintf(stderr, "%s\n", line);
  }
}

}  // namespace noble::obs
