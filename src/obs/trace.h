// Per-request stage tracing: where did the microseconds go?
//
// A `Trace` rides a request through the stack — gateway decode → admission
// → queue wait → batch assembly → kernel compute → response write — and
// records one monotonic timestamp per stage boundary (`Mark`). Ownership
// follows the request: the edge that creates the request (gateway frame
// handler, or the bench harness for in-process runs) starts the trace and
// attaches it to `SubmitOptions`; the tier that writes the response calls
// `Tracer::finish`, which folds the stage durations into always-on
// per-stage latency histograms in the metrics registry, pushes sampled
// traces into a lock-free ring for inspection, and logs a full stage
// breakdown for any request slower than the configured threshold.
//
// Synchronization: a Trace's marks are plain (non-atomic) words. Every
// handoff between the threads that stamp them already carries a
// happens-before edge — the queue push/pop for admission → dequeue, the
// promise/future for compute → response — so no per-stamp atomics are
// needed. Tracing is observability only: it never changes when or where a
// scan runs, and never its result (the bit-identity contract).
//
// Knobs (read once at first use of `Tracer::global()`):
//   NOBLE_TRACE         tracing on/off (default 1; 0 ⇒ no traces allocated)
//   NOBLE_TRACE_SAMPLE  fraction of traces kept in the ring (default 0.01)
//   NOBLE_TRACE_SLOW_US slow-request log threshold in us (default 0 = off)
//   NOBLE_TRACE_SEED    sampling hash seed (fixed default; determinism knob)
#ifndef NOBLE_OBS_TRACE_H_
#define NOBLE_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace noble::obs {

/// Stage-boundary timestamps, in pipeline order. A mark of 0 means "never
/// reached / not applicable" (in-process submissions have no kRecv; a
/// request expired in the queue has no kDequeued).
enum class Mark : std::uint8_t {
  kRecv = 0,      ///< frame bytes arrived at the gateway
  kSubmit,        ///< decoded and handed to submit()/track()
  kAdmitted,      ///< passed admission, entering the queue
  kDequeued,      ///< popped by a worker
  kAssembled,     ///< micro-batch built, entering compute
  kComputed,      ///< kernel finished
  kResponded,     ///< response handed back (future set / socket buffered)
  kNumMarks,
};
inline constexpr std::size_t kNumMarks = static_cast<std::size_t>(Mark::kNumMarks);

/// Durations between consecutive marks. kDecode only exists for wire
/// requests (kRecv stamped); kQueueWait deliberately includes the engine's
/// batching window — time parked in the queue is queue wait, whatever the
/// worker was doing.
enum class Stage : std::uint8_t {
  kDecode = 0,      ///< kRecv → kSubmit
  kAdmission,       ///< kSubmit → kAdmitted
  kQueueWait,       ///< kAdmitted → kDequeued
  kBatchAssembly,   ///< kDequeued → kAssembled
  kCompute,         ///< kAssembled → kComputed
  kRespond,         ///< kComputed → kResponded
  kNumStages,
};
inline constexpr std::size_t kNumStages = static_cast<std::size_t>(Stage::kNumStages);

/// Stable lowercase stage name ("decode", ..., "respond") — the `stage`
/// label value on `noble_stage_latency_us`.
const char* stage_name(Stage stage);

/// One request's stage clock. Created by `Tracer::start`, carried by
/// `shared_ptr` through `SubmitOptions` (the engine copies options), marks
/// stamped by whichever thread owns the request at that boundary.
struct Trace {
  std::uint64_t id = 0;
  bool sampled = false;
  /// True when a tier above the engine (the gateway) writes the response
  /// and must therefore stamp kResponded and call finish(); the engine
  /// finishes the trace itself otherwise.
  bool external_respond = false;
  std::array<std::uint64_t, kNumMarks> marks_ns{};  // 0 = not reached

  /// Monotonic nanoseconds (steady clock) — the only clock marks use.
  static std::uint64_t now_ns();

  void stamp(Mark mark) { stamp(mark, now_ns()); }
  void stamp(Mark mark, std::uint64_t ns) {
    marks_ns[static_cast<std::size_t>(mark)] = ns;
  }
  std::uint64_t mark_ns(Mark mark) const {
    return marks_ns[static_cast<std::size_t>(mark)];
  }

  /// Duration of `stage` in us, or a negative value when either endpoint
  /// was never stamped.
  double stage_us(Stage stage) const;

  /// End-to-end us: kRecv (or kSubmit when no wire leg) → kResponded;
  /// negative when unfinished.
  double e2e_us() const;
};

/// A finished, sampled trace as stored in the ring: id + all marks, flat.
struct TraceRecord {
  std::uint64_t id = 0;
  std::array<std::uint64_t, kNumMarks> marks_ns{};
};

/// Fixed-size lock-free ring of recent sampled traces. Writers claim a slot
/// by sequence CAS (a writer that loses the race drops its record — the
/// ring samples, it does not queue), stamp the payload through relaxed
/// atomics, and publish with a release store; `snapshot()` skips slots
/// caught mid-write. All payload accesses are atomic, so concurrent
/// write/read is well-defined (and TSan-clean), merely possibly skipped.
class TraceRing {
 public:
  /// Capacity is rounded up to a power of two; default 1024 records.
  explicit TraceRing(std::size_t capacity = 1024);

  void push(const TraceRecord& rec);

  /// All fully-published records, unordered. Concurrent pushes may be
  /// missed or duplicated-by-overwrite; each returned record is internally
  /// consistent.
  std::vector<TraceRecord> snapshot() const;

  std::size_t capacity() const { return slots_.size(); }
  /// Records dropped to a slot-claim race (diagnostic, not an error).
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Slot {
    // seq: 0 = never written; odd = write in progress; even > 0 = published.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<std::uint64_t> id{0};
    std::array<std::atomic<std::uint64_t>, kNumMarks> marks{};
  };
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Runtime tracing configuration. `from_env()` reads the NOBLE_TRACE_*
/// knobs; benches reconfigure programmatically (the overhead gate flips
/// `enabled` with everything else held fixed).
struct TraceConfig {
  bool enabled = true;
  double sample_rate = 0.01;     ///< fraction of traces pushed to the ring
  std::uint64_t slow_us = 0;     ///< 0 disables the slow-request log
  std::uint64_t seed = 0x6f62735f6e6f626cULL;  ///< sampling hash seed

  static TraceConfig from_env();
};

/// Deterministic sampler: trace n is sampled iff mix64(seed ^ n) falls
/// under rate · 2^64. The decision sequence is a pure function of (seed,
/// counter), independent of thread interleaving — the property the
/// determinism test in test_obs pins down.
class TraceSampler {
 public:
  /// Pure decision for sequence number `n` under (seed, rate).
  static bool decide(std::uint64_t seed, std::uint64_t n, double rate);

  void configure(std::uint64_t seed, double rate);
  bool next() { return decide(seed_, n_.fetch_add(1, std::memory_order_relaxed), rate_); }

 private:
  std::atomic<std::uint64_t> n_{0};
  std::uint64_t seed_ = 0;
  double rate_ = 0.0;
};

/// Factory + sink for traces. Owns the ring and the always-on per-stage
/// histograms (`noble_stage_latency_us{stage=...}`, `noble_trace_e2e_us`)
/// plus trace counters, all registered in the given `Registry`.
/// Instantiable for tests; `global()` (lazily configured from env) is the
/// one the serving stack uses.
class Tracer {
 public:
  explicit Tracer(Registry& registry, std::size_t ring_capacity = 1024);

  static Tracer& global();

  /// Atomically swaps the runtime config and resets the sampling sequence
  /// to 0 (so identical configs replay identical sampling decisions).
  void configure(const TraceConfig& config);
  TraceConfig config() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// A fresh trace with the sampling decision taken, or nullptr when
  /// tracing is disabled (the disabled hot path allocates nothing).
  std::shared_ptr<Trace> start(std::uint64_t id);

  /// Terminal sink: records every reached stage into its histogram, the
  /// e2e span, ring-pushes sampled traces, and emits the slow-request log.
  /// Call exactly once, after the final mark; traces of failed requests
  /// may simply be dropped instead (their stages stay out of the
  /// histograms — stage latency describes served requests).
  void finish(const Trace& trace);

  const TraceRing& ring() const { return ring_; }

 private:
  mutable std::mutex config_mu_;
  TraceConfig config_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> slow_ns_{0};
  TraceSampler sampler_;
  TraceRing ring_;
  std::array<HistogramMetric*, kNumStages> stage_hist_{};
  HistogramMetric* e2e_hist_ = nullptr;
  Counter* started_ = nullptr;
  Counter* finished_ = nullptr;
  Counter* sampled_ = nullptr;
  Counter* slow_ = nullptr;
};

}  // namespace noble::obs

#endif  // NOBLE_OBS_TRACE_H_
