#include "common/config.h"

#include <algorithm>
#include <cstdlib>

namespace noble {

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v) ? fallback : parsed;
}

long env_int(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end == v) ? fallback : parsed;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return (v == nullptr || *v == '\0') ? fallback : std::string(v);
}

double global_scale() {
  static const double scale = std::clamp(env_double("NOBLE_SCALE", 1.0), 0.05, 100.0);
  return scale;
}

std::size_t scaled(std::size_t n, std::size_t min_n) {
  const auto s = static_cast<std::size_t>(static_cast<double>(n) * global_scale());
  return std::max(s, min_n);
}

}  // namespace noble
