// Descriptive statistics used by the evaluation harness and benchmarks.
#ifndef NOBLE_COMMON_STATS_H_
#define NOBLE_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace noble {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& v);

/// Population variance; 0 for inputs with fewer than 2 elements.
double variance(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Median (average of the two middle elements for even sizes). Copies input.
double median(std::vector<double> v);

/// q-th percentile with linear interpolation, q in [0, 100]. Copies input.
double percentile(std::vector<double> v, double q);

/// Root mean square of the values.
double rms(const std::vector<double>& v);

/// Minimum; +inf for empty input.
double min_value(const std::vector<double>& v);

/// Maximum; -inf for empty input.
double max_value(const std::vector<double>& v);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void push(double x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Mean of observations so far (0 if none).
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator; 0 for fewer than 2 observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace noble

#endif  // NOBLE_COMMON_STATS_H_
