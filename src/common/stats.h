// Descriptive statistics used by the evaluation harness and benchmarks.
#ifndef NOBLE_COMMON_STATS_H_
#define NOBLE_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace noble {

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& v);

/// Population variance; 0 for inputs with fewer than 2 elements.
double variance(const std::vector<double>& v);

/// Population standard deviation.
double stddev(const std::vector<double>& v);

/// Median (average of the two middle elements for even sizes). Copies input.
double median(std::vector<double> v);

/// q-th percentile with linear interpolation, q in [0, 100]. Copies input.
double percentile(std::vector<double> v, double q);

/// Root mean square of the values.
double rms(const std::vector<double>& v);

/// Minimum; +inf for empty input.
double min_value(const std::vector<double>& v);

/// Maximum; -inf for empty input.
double max_value(const std::vector<double>& v);

/// Fixed-layout histogram with log-spaced bins: constant-memory percentile
/// estimation for streams too large (or too concurrent) to keep as samples.
///
/// The layout is frozen at construction: `num_bins` bins covering [lo, hi)
/// with geometrically equal widths, plus an underflow bin (x < lo, zero and
/// negative values included) and an overflow bin (x >= hi). Two histograms
/// with the same layout can be `merge`d — per-thread recording with one
/// combine at the end needs no locks.
///
/// `percentile` interpolates geometrically inside the covering bin and is
/// clamped to the exact recorded min/max, so its error is bounded by one
/// bin's width ratio: a factor of (hi/lo)^(1/num_bins) of the exact sample
/// percentile for in-range data (see test_common_stats cross-checks).
class Histogram {
 public:
  /// Layout: num_bins log-spaced bins over [lo, hi). Requires
  /// 0 < lo < hi and num_bins >= 1.
  Histogram(double lo, double hi, std::size_t num_bins);

  /// Latency layout shared by the serving benches and the engine telemetry:
  /// 1 us .. 10 s in 140 bins (~12% relative resolution per bin).
  static Histogram latency_us() { return Histogram(1.0, 1e7, 140); }

  /// Micro-batch-size layout: 1 .. 4096 in 48 bins.
  static Histogram batch_sizes() { return Histogram(1.0, 4096.0, 48); }

  /// Rebuilds a histogram from its serialized parts (the obs metrics
  /// snapshot codec round-trips histograms through this). `counts` must be
  /// num_bins + 2 entries ([under, bins, over], exactly the bin_count /
  /// underflow_count / overflow_count view).
  static Histogram from_parts(double lo, double hi, std::size_t num_bins,
                              std::vector<std::uint64_t> counts, std::uint64_t total,
                              double sum, double min_rec, double max_rec);

  /// Adds one observation. Values below `lo` (including 0 and negatives)
  /// land in the underflow bin; values >= `hi` in the overflow bin. NaN is
  /// not an observation and is ignored (count() excluded).
  void record(double x);

  /// Adds another histogram's counts. Precondition: identical layout.
  void merge(const Histogram& other);

  /// Removes another histogram's counts — the windowed delta view a bench
  /// takes between two snapshots of one growing histogram. Preconditions:
  /// identical layout and `other` is an earlier snapshot of this stream
  /// (every bin of `other` <= the matching bin here). The recorded extrema
  /// stay at their cumulative values (a removed observation may have been
  /// the min/max), so percentile clamping is merely conservative, not wrong.
  void subtract(const Histogram& other);

  /// Exact sum of all recorded values (mean() * count(), tracked exactly).
  double sum_recorded() const { return sum_; }

  /// Observations recorded so far.
  std::uint64_t count() const { return total_; }

  /// q-th percentile estimate, q in [0, 100]; 0 when empty. Exact at the
  /// tails (clamped to recorded min/max), within one bin ratio elsewhere.
  double percentile(double q) const;

  /// Exact mean of all recorded values (tracked outside the bins).
  double mean() const;

  /// Exact recorded extrema; +inf / -inf when empty.
  double min_recorded() const { return min_rec_; }
  double max_recorded() const { return max_rec_; }

  /// Layout accessors (bin 0..num_bins()-1; excludes under/overflow bins).
  std::size_t num_bins() const { return counts_.size() - 2; }
  double lower_bound() const { return lo_; }
  double upper_bound() const { return hi_; }
  double bin_lower(std::size_t i) const;
  double bin_upper(std::size_t i) const { return bin_lower(i + 1); }
  std::uint64_t bin_count(std::size_t i) const { return counts_[i + 1]; }
  std::uint64_t underflow_count() const { return counts_.front(); }
  std::uint64_t overflow_count() const { return counts_.back(); }

  /// True when the other histogram has an identical bin layout.
  bool same_layout(const Histogram& other) const;

 private:
  double lo_;
  double hi_;
  double log_lo_;
  double inv_log_step_;  ///< num_bins / (log(hi) - log(lo))
  std::vector<std::uint64_t> counts_;  ///< [under, bin 0..n-1, over]
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_rec_;
  double max_rec_;
};

/// The percentile triple every serving surface reports. Extracted from a
/// latency Histogram once at snapshot/merge time so engine telemetry,
/// fleet views and bench tables all summarize the same way.
struct LatencySummary {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// p50/p95/p99 of a latency histogram (zeros when empty).
LatencySummary summarize_latency_us(const Histogram& h);

/// Online mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void push(double x);
  /// Number of observations so far.
  std::size_t count() const { return n_; }
  /// Mean of observations so far (0 if none).
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator; 0 for fewer than 2 observations).
  double variance() const;
  /// Sample standard deviation.
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace noble

#endif  // NOBLE_COMMON_STATS_H_
