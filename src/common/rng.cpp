#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/check.h"

namespace noble {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  NOBLE_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  NOBLE_EXPECTS(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  NOBLE_EXPECTS(stddev >= 0.0);
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  NOBLE_EXPECTS(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

Rng Rng::split(std::uint64_t tag) {
  // Mix the current state with the tag through SplitMix64 for an
  // independent stream.
  std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (tag * 0xD2B74407B1CE6E93ULL);
  Rng child(splitmix64(x));
  return child;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  NOBLE_EXPECTS(k <= n);
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: first k entries are the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace noble
