// Lightweight contract checking (Core Guidelines I.6/I.8 style).
//
// NOBLE_EXPECTS / NOBLE_ENSURES abort with a readable message on violation.
// They stay active in release builds: every caller of this library is a
// research harness where silent corruption is worse than an abort.
#ifndef NOBLE_COMMON_CHECK_H_
#define NOBLE_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace noble {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[noble] %s violated: (%s) at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace noble

#define NOBLE_EXPECTS(cond) \
  ((cond) ? (void)0 : ::noble::contract_failure("precondition", #cond, __FILE__, __LINE__))
#define NOBLE_ENSURES(cond) \
  ((cond) ? (void)0 : ::noble::contract_failure("postcondition", #cond, __FILE__, __LINE__))
#define NOBLE_CHECK(cond) \
  ((cond) ? (void)0 : ::noble::contract_failure("invariant", #cond, __FILE__, __LINE__))

#endif  // NOBLE_COMMON_CHECK_H_
