#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.h"

namespace noble {

int CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

double CsvTable::number(std::size_t r, const std::string& column) const {
  const int c = column_index(column);
  NOBLE_EXPECTS(c >= 0);
  NOBLE_EXPECTS(r < rows.size());
  return std::stod(rows[r][static_cast<std::size_t>(c)]);
}

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(std::vector<std::string> cells) {
  NOBLE_EXPECTS(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_numeric_row(const std::vector<double>& cells) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  char buf[64];
  for (double x : cells) {
    std::snprintf(buf, sizeof buf, "%.6g", x);
    row.emplace_back(buf);
  }
  add_row(std::move(row));
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) out << ',';
    out << header_[i];
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool load_csv(const std::string& path, bool has_header, CsvTable& out) {
  std::ifstream in(path);
  if (!in) return false;
  out.header.clear();
  out.rows.clear();
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> cells;
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) cells.push_back(cell);
    if (line.back() == ',') cells.emplace_back();
    if (first && has_header) {
      out.header = std::move(cells);
      first = false;
      continue;
    }
    first = false;
    out.rows.push_back(std::move(cells));
  }
  return true;
}

}  // namespace noble
