// FNV-1a 64-bit — the repo's one content-identity hash. Not cryptographic:
// it names artifacts (a model's serialized bytes -> a digest two nodes can
// compare over the wire) and detects file changes, where an adversarial
// collision is not in the threat model but cross-platform stability and
// zero dependencies are.
#ifndef NOBLE_COMMON_HASH_H_
#define NOBLE_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace noble::common {

inline constexpr std::uint64_t kFnvOffsetBasis = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// FNV-1a over `bytes`, chainable via `seed` (pass a previous digest to
/// fold multiple byte runs into one identity).
constexpr std::uint64_t fnv1a64(std::string_view bytes,
                                std::uint64_t seed = kFnvOffsetBasis) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

}  // namespace noble::common

#endif  // NOBLE_COMMON_HASH_H_
