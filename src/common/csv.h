// Minimal CSV reader/writer for experiment artifacts (figure dumps, dataset
// persistence). Not a general-purpose parser: fields must not contain commas
// or newlines, which all library artifacts satisfy.
#ifndef NOBLE_COMMON_CSV_H_
#define NOBLE_COMMON_CSV_H_

#include <string>
#include <vector>

namespace noble {

/// In-memory CSV table with an optional header row.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named column, or -1 if absent.
  int column_index(const std::string& name) const;

  /// Value of row r in the named column parsed as double.
  /// Aborts if the column is missing or the cell is not numeric.
  double number(std::size_t r, const std::string& column) const;
};

/// CSV writer accumulating rows in memory; `save` flushes to disk.
class CsvWriter {
 public:
  /// Sets the header (first line) of the file.
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends a row of string cells. Must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of numeric cells (formatted with %.6g).
  void add_numeric_row(const std::vector<double>& cells);

  /// Writes the table to `path`; returns false on I/O failure.
  bool save(const std::string& path) const;

  /// Number of data rows accumulated.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Loads a CSV file; `has_header` consumes the first row as header.
/// Returns false on I/O failure.
bool load_csv(const std::string& path, bool has_header, CsvTable& out);

}  // namespace noble

#endif  // NOBLE_COMMON_CSV_H_
