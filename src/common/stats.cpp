#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace noble {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double q) {
  NOBLE_EXPECTS(q >= 0.0 && q <= 100.0);
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double min_value(const std::vector<double>& v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double max_value(const std::vector<double>& v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo),
      hi_(hi),
      log_lo_(std::log(lo)),
      inv_log_step_(static_cast<double>(num_bins) / (std::log(hi) - std::log(lo))),
      counts_(num_bins + 2, 0),
      min_rec_(std::numeric_limits<double>::infinity()),
      max_rec_(-std::numeric_limits<double>::infinity()) {
  NOBLE_EXPECTS(lo > 0.0 && hi > lo && num_bins >= 1);
}

Histogram Histogram::from_parts(double lo, double hi, std::size_t num_bins,
                                std::vector<std::uint64_t> counts, std::uint64_t total,
                                double sum, double min_rec, double max_rec) {
  Histogram h(lo, hi, num_bins);
  NOBLE_EXPECTS(counts.size() == num_bins + 2);
  h.counts_ = std::move(counts);
  h.total_ = total;
  h.sum_ = sum;
  h.min_rec_ = total == 0 ? std::numeric_limits<double>::infinity() : min_rec;
  h.max_rec_ = total == 0 ? -std::numeric_limits<double>::infinity() : max_rec;
  return h;
}

void Histogram::record(double x) {
  if (std::isnan(x)) return;  // not an observation; ignore entirely
  ++total_;
  sum_ += x;
  min_rec_ = std::min(min_rec_, x);
  max_rec_ = std::max(max_rec_, x);
  if (x < lo_) {  // negatives and zero land in underflow
    ++counts_.front();
  } else if (x >= hi_) {
    ++counts_.back();
  } else {
    auto bin = static_cast<std::size_t>((std::log(x) - log_lo_) * inv_log_step_);
    bin = std::min(bin, num_bins() - 1);  // guard rounding at the upper edge
    ++counts_[bin + 1];
  }
}

void Histogram::merge(const Histogram& other) {
  NOBLE_EXPECTS(same_layout(other));
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  min_rec_ = std::min(min_rec_, other.min_rec_);
  max_rec_ = std::max(max_rec_, other.max_rec_);
}

void Histogram::subtract(const Histogram& other) {
  NOBLE_EXPECTS(same_layout(other));
  NOBLE_EXPECTS(total_ >= other.total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    NOBLE_EXPECTS(counts_[i] >= other.counts_[i]);
    counts_[i] -= other.counts_[i];
  }
  total_ -= other.total_;
  sum_ -= other.sum_;
  if (total_ == 0) {
    sum_ = 0.0;  // cancel float residue so an empty delta reports mean 0
    min_rec_ = std::numeric_limits<double>::infinity();
    max_rec_ = -std::numeric_limits<double>::infinity();
  }
  // Non-empty deltas keep the cumulative extrema: the subtracted window may
  // have held the true min/max, and conservative clamp bounds are correct.
}

double Histogram::bin_lower(std::size_t i) const {
  return std::exp(log_lo_ + static_cast<double>(i) / inv_log_step_);
}

bool Histogram::same_layout(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ && counts_.size() == other.counts_.size();
}

double Histogram::percentile(double q) const {
  NOBLE_EXPECTS(q >= 0.0 && q <= 100.0);
  if (total_ == 0) return 0.0;
  const double need = q / 100.0 * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (static_cast<double>(cum) < need || counts_[i] == 0) continue;
    const double into = std::max(0.0, need - static_cast<double>(cum - counts_[i]));
    const double frac = std::min(1.0, into / static_cast<double>(counts_[i]));
    double value;
    if (i == 0) {
      // Underflow bin: no log edges below lo; interpolate linearly from the
      // exact recorded min up to the bin's effective upper edge. The min()
      // keeps an all-underflow stream exact at both tails.
      const double upper = std::min(lo_, max_rec_);
      value = min_rec_ + frac * (upper - min_rec_);
    } else if (i + 1 == counts_.size()) {
      const double lower = std::max(hi_, min_rec_);
      value = lower + frac * (max_rec_ - lower);
    } else {
      // Geometric interpolation inside the covering bin, matching the
      // log-spaced edges.
      const double lower = bin_lower(i - 1);
      value = lower * std::pow(bin_upper(i - 1) / lower, frac);
    }
    return std::clamp(value, min_rec_, max_rec_);
  }
  return max_rec_;  // q == 100 with all mass already consumed
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  return sum_ / static_cast<double>(total_);
}

LatencySummary summarize_latency_us(const Histogram& h) {
  return LatencySummary{h.percentile(50.0), h.percentile(95.0), h.percentile(99.0)};
}

void RunningStats::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace noble
