#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace noble {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

double percentile(std::vector<double> v, double q) {
  NOBLE_EXPECTS(q >= 0.0 && q <= 100.0);
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s / static_cast<double>(v.size()));
}

double min_value(const std::vector<double>& v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double max_value(const std::vector<double>& v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

void RunningStats::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace noble
