// Environment-driven experiment scaling.
//
// The reproduction runs on arbitrary hardware (the reference substrate is a
// single-core container), so every benchmark multiplies its dataset sizes by
// NOBLE_SCALE and reads a handful of named knobs. Defaults reproduce the
// paper-shaped tables in a few minutes of CPU time.
#ifndef NOBLE_COMMON_CONFIG_H_
#define NOBLE_COMMON_CONFIG_H_

#include <cstddef>
#include <string>

namespace noble {

/// Global scale factor, from env NOBLE_SCALE (default 1.0, clamped to
/// [0.05, 100]). Benchmarks multiply sample counts by this.
double global_scale();

/// Reads a double knob from the environment with a default.
double env_double(const char* name, double fallback);

/// Reads an integer knob from the environment with a default.
long env_int(const char* name, long fallback);

/// Reads a string knob from the environment with a default.
std::string env_string(const char* name, const std::string& fallback);

/// n scaled by global_scale(), at least `min_n`.
std::size_t scaled(std::size_t n, std::size_t min_n = 8);

}  // namespace noble

#endif  // NOBLE_COMMON_CONFIG_H_
