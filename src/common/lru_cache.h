// Bounded, sharded LRU cache — the generic substrate of the engine's
// RSSI-fingerprint result cache.
//
// The map is split into independent shards (key -> shard by hash), each with
// its own mutex, recency list and capacity slice, so concurrent lookups from
// many client threads contend only when they collide on a shard. Eviction is
// per-shard LRU. Hit/miss/eviction counters are kept under the shard locks
// and summed on `stats()`, matching the snapshot-style telemetry of
// noble::engine::EngineStats.
//
// `get` returns a copy of the value: entries stay owned by the cache and can
// be evicted by a concurrent `put` at any moment, so handing out references
// would be a use-after-free factory.
#ifndef NOBLE_COMMON_LRU_CACHE_H_
#define NOBLE_COMMON_LRU_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"

namespace noble {

/// Aggregate cache telemetry (summed over shards at snapshot time).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;  ///< current resident entries
};

template <class Key, class Value, class Hash = std::hash<Key>,
          class Eq = std::equal_to<Key>>
class ShardedLruCache {
 public:
  /// `capacity` total entries split evenly across `num_shards` shards (each
  /// shard holds at least one entry, so tiny capacities still cache).
  ShardedLruCache(std::size_t capacity, std::size_t num_shards, Hash hash = Hash(),
                  Eq eq = Eq())
      : hash_(std::move(hash)), shards_(num_shards == 0 ? 1 : num_shards) {
    NOBLE_EXPECTS(capacity >= 1);
    const std::size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
    for (Shard& shard : shards_) {
      shard.capacity = per_shard < 1 ? 1 : per_shard;
      shard.index = decltype(shard.index)(8, ShardHash{&hash_}, ShardEq{eq});
    }
  }

  // Not copyable or movable: shard mutexes aside, every shard's index
  // hashes through a pointer to this object's hash_ member, which a move
  // would leave dangling.
  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns a copy of the cached value, refreshing its recency; nullopt
  /// (counted as a miss) when absent.
  std::optional<Value> get(const Key& key) {
    const std::size_t h = hash_(key);
    Shard& shard = shard_of(h);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    // Move to the front of the recency list (most recently used).
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    ++shard.hits;
    return it->second->second;
  }

  /// Inserts or refreshes key -> value, evicting the shard's LRU entry when
  /// the shard is at capacity.
  void put(Key key, Value value) {
    const std::size_t h = hash_(key);
    Shard& shard = shard_of(h);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(&shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.emplace_front(std::move(key), std::move(value));
    shard.index.emplace(&shard.lru.front().first, shard.lru.begin());
    ++shard.insertions;
  }

  /// Drops every entry (counters are preserved; they are lifetime totals).
  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.index.clear();
      shard.lru.clear();
    }
  }

  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total.hits += shard.hits;
      total.misses += shard.misses;
      total.insertions += shard.insertions;
      total.evictions += shard.evictions;
      total.entries += shard.lru.size();
    }
    return total;
  }

  std::size_t num_shards() const { return shards_.size(); }
  /// Total capacity actually provisioned (per-shard slices may round up).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.capacity;
    return total;
  }

 private:
  // The index borrows key storage from the recency list (keys can be large —
  // a whole RSSI scan), so the unordered_map key is a pointer wrapper that
  // hashes/compares through the pointee.
  struct ShardHash {
    const Hash* hash;
    std::size_t operator()(const Key* k) const { return (*hash)(*k); }
    std::size_t operator()(const Key& k) const { return (*hash)(k); }
    using is_transparent = void;
  };
  struct ShardEq {
    Eq eq;
    bool operator()(const Key* a, const Key* b) const { return eq(*a, *b); }
    bool operator()(const Key* a, const Key& b) const { return eq(*a, b); }
    bool operator()(const Key& a, const Key* b) const { return eq(a, *b); }
    using is_transparent = void;
  };

  struct Shard {
    mutable std::mutex mu;
    std::size_t capacity = 1;
    std::list<std::pair<Key, Value>> lru;  ///< front = most recently used
    std::unordered_map<const Key*, typename std::list<std::pair<Key, Value>>::iterator,
                       ShardHash, ShardEq>
        index{8, ShardHash{nullptr}, ShardEq{}};
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_of(std::size_t hash) { return shards_[hash % shards_.size()]; }

  Hash hash_;
  std::vector<Shard> shards_;
};

}  // namespace noble

#endif  // NOBLE_COMMON_LRU_CACHE_H_
