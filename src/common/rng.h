// Deterministic random number generation.
//
// All stochastic components of the library (simulators, initializers, data
// splits) draw from noble::Rng so that every experiment is reproducible from a
// single seed, independent of the platform's std:: distribution
// implementations. The engine is xoshiro256** seeded via SplitMix64; both are
// public-domain algorithms (Blackman & Vigna).
#ifndef NOBLE_COMMON_RNG_H_
#define NOBLE_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace noble {

/// Deterministic, stream-splittable random generator.
///
/// `Rng(seed)` always produces the same sequence. `split(tag)` derives an
/// independent child stream, so subsystems can be reordered without changing
/// each other's draws.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (SplitMix64 state expansion).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Derives an independent child generator; `tag` decorrelates siblings.
  Rng split(std::uint64_t tag);

  /// Fisher-Yates shuffle of an index-like vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace noble

#endif  // NOBLE_COMMON_RNG_H_
