// Floating-point helpers with deliberately pinned-down semantics.
#ifndef NOBLE_COMMON_FPMATH_H_
#define NOBLE_COMMON_FPMATH_H_

namespace noble::detail {

/// Rounds a double to float precision, returning it as double — and
/// guarantees the narrowing conversion actually happens in the emitted code.
///
/// A bare `static_cast<double>(static_cast<float>(v))` is legal to fold: GCC
/// 12's SLP vectorizer deletes the paired double->float->double casts when
/// two such round-trips sit side by side (no cvtsd2ss in the emitted code),
/// silently keeping full double precision and breaking bit-equivalence
/// between code paths that store intermediates in float32 and paths that
/// don't. The volatile float forces a real store at float width, which no
/// conforming optimizer may elide. Keep all float32-rounding of double
/// accumulators behind this helper so the miscompile can't be reintroduced
/// by an innocent-looking refactor.
inline double stable_round(double v) {
  volatile float f = static_cast<float>(v);
  return static_cast<double>(f);
}

}  // namespace noble::detail

#endif  // NOBLE_COMMON_FPMATH_H_
