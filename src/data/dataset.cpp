#include "data/dataset.h"

#include "common/check.h"

namespace noble::data {

namespace {

std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  return idx;
}

}  // namespace

WifiSplit split_wifi(const WifiDataset& all, double val_frac, double test_frac, Rng& rng) {
  NOBLE_EXPECTS(val_frac >= 0.0 && test_frac >= 0.0 && val_frac + test_frac < 1.0);
  const auto idx = shuffled_indices(all.size(), rng);
  const auto n_val = static_cast<std::size_t>(val_frac * static_cast<double>(all.size()));
  const auto n_test = static_cast<std::size_t>(test_frac * static_cast<double>(all.size()));
  WifiSplit split;
  split.train.num_aps = split.val.num_aps = split.test.num_aps = all.num_aps;
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const WifiSample& s = all.samples[idx[i]];
    if (i < n_val) {
      split.val.samples.push_back(s);
    } else if (i < n_val + n_test) {
      split.test.samples.push_back(s);
    } else {
      split.train.samples.push_back(s);
    }
  }
  return split;
}

ImuSplit split_imu(const ImuDataset& all, double val_frac, double test_frac, Rng& rng) {
  NOBLE_EXPECTS(val_frac >= 0.0 && test_frac >= 0.0 && val_frac + test_frac < 1.0);
  const auto idx = shuffled_indices(all.size(), rng);
  const auto n_val = static_cast<std::size_t>(val_frac * static_cast<double>(all.size()));
  const auto n_test = static_cast<std::size_t>(test_frac * static_cast<double>(all.size()));
  ImuSplit split;
  for (ImuDataset* part : {&split.train, &split.val, &split.test}) {
    part->segment_dim = all.segment_dim;
    part->max_segments = all.max_segments;
  }
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const ImuPath& p = all.paths[idx[i]];
    if (i < n_val) {
      split.val.paths.push_back(p);
    } else if (i < n_val + n_test) {
      split.test.paths.push_back(p);
    } else {
      split.train.paths.push_back(p);
    }
  }
  return split;
}

linalg::Mat wifi_feature_matrix(const WifiDataset& ds) {
  linalg::Mat x(ds.size(), ds.num_aps);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    NOBLE_EXPECTS(ds.samples[i].rssi.size() == ds.num_aps);
    float* row = x.row(i);
    for (std::size_t j = 0; j < ds.num_aps; ++j) row[j] = ds.samples[i].rssi[j];
  }
  return x;
}

linalg::Mat wifi_position_matrix(const WifiDataset& ds) {
  linalg::Mat y(ds.size(), 2);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    y(i, 0) = static_cast<float>(ds.samples[i].position.x);
    y(i, 1) = static_cast<float>(ds.samples[i].position.y);
  }
  return y;
}

linalg::Mat imu_feature_matrix(const ImuDataset& ds) {
  linalg::Mat x(ds.size(), ds.feature_dim());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    NOBLE_EXPECTS(ds.paths[i].features.size() == ds.feature_dim());
    float* row = x.row(i);
    for (std::size_t j = 0; j < ds.feature_dim(); ++j) row[j] = ds.paths[i].features[j];
  }
  return x;
}

linalg::Mat imu_end_matrix(const ImuDataset& ds) {
  linalg::Mat y(ds.size(), 2);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    y(i, 0) = static_cast<float>(ds.paths[i].end.x);
    y(i, 1) = static_cast<float>(ds.paths[i].end.y);
  }
  return y;
}

}  // namespace noble::data
