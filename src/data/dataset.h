// Dataset schemas mirroring the paper's two applications.
//
// Wi-Fi fingerprints follow the UJIIndoorLoc layout: one RSSI value per
// access point (sentinel +100 when not detected), building id, floor id and
// metric position. IMU paths follow §V-A: a fixed-layout concatenation of
// per-segment inertial windows plus start/end reference positions.
#ifndef NOBLE_DATA_DATASET_H_
#define NOBLE_DATA_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geo/point.h"
#include "linalg/matrix.h"

namespace noble::data {

/// UJI-style sentinel for "access point not detected".
inline constexpr float kNotDetectedRssi = 100.0f;
/// Weakest observable signal (dBm); UJI uses -104 dBm.
inline constexpr float kMinRssiDbm = -104.0f;

/// One offline fingerprint observation: (s⃗, b, f, (x, y)).
struct WifiSample {
  std::vector<float> rssi;  ///< dBm per AP; kNotDetectedRssi when unseen.
  int building = 0;
  int floor = 0;
  geo::Point2 position;
};

/// A fingerprint radio map plus metadata.
struct WifiDataset {
  std::size_t num_aps = 0;
  std::vector<WifiSample> samples;

  std::size_t size() const { return samples.size(); }
};

/// Train/validation/test split of a Wi-Fi dataset.
struct WifiSplit {
  WifiDataset train, val, test;
};

/// Random split by fractions (val_frac + test_frac < 1). Deterministic in rng.
WifiSplit split_wifi(const WifiDataset& all, double val_frac, double test_frac, Rng& rng);

/// One IMU travel path (§V-A): fixed-layout features
/// [segment_0 | segment_1 | ... | segment_{max_segments-1}] with zero padding
/// past `num_segments`, plus endpoints.
struct ImuPath {
  std::vector<float> features;   ///< max_segments * segment_dim floats.
  std::size_t num_segments = 0;  ///< actual segments before padding.
  geo::Point2 start;             ///< start reference position (known input).
  geo::Point2 end;               ///< label: path ending position.
  int start_ref = 0;             ///< index of the starting reference point.
  int end_ref = 0;               ///< index of the ending reference point.
  double duration_s = 0.0;       ///< walking time represented by the path.
  /// Reference position after each segment (size num_segments; the last one
  /// equals `end`). Available at training time because every reference
  /// location has GPS coordinates (§V-A); used by the map-assisted
  /// dead-reckoning baseline and the displacement supervision.
  std::vector<geo::Point2> segment_endpoints;
};

/// IMU path dataset with its fixed layout parameters.
struct ImuDataset {
  std::size_t segment_dim = 0;   ///< floats per segment window.
  std::size_t max_segments = 0;  ///< fixed feature layout length.
  std::vector<ImuPath> paths;

  std::size_t size() const { return paths.size(); }
  std::size_t feature_dim() const { return segment_dim * max_segments; }
};

/// Train/validation/test split of an IMU dataset.
struct ImuSplit {
  ImuDataset train, val, test;
};

/// Random split by fractions, keeping layout metadata.
ImuSplit split_imu(const ImuDataset& all, double val_frac, double test_frac, Rng& rng);

/// Stacks RSSI vectors into an n x num_aps matrix (raw dBm / sentinel form).
linalg::Mat wifi_feature_matrix(const WifiDataset& ds);

/// Stacks positions into an n x 2 matrix.
linalg::Mat wifi_position_matrix(const WifiDataset& ds);

/// Stacks IMU features into an n x feature_dim matrix.
linalg::Mat imu_feature_matrix(const ImuDataset& ds);

/// Stacks IMU end positions into an n x 2 matrix.
linalg::Mat imu_end_matrix(const ImuDataset& ds);

}  // namespace noble::data

#endif  // NOBLE_DATA_DATASET_H_
