#include "data/preprocess.h"

#include <cmath>

#include "common/check.h"
#include "linalg/ops.h"

namespace noble::data {

linalg::Mat normalize_rssi(const linalg::Mat& raw, RssiRepresentation rep, float min_rssi,
                           double powed_exponent) {
  NOBLE_EXPECTS(min_rssi < 0.0f);
  linalg::Mat out(raw.rows(), raw.cols());
  const float range = -min_rssi;  // e.g. 104 dB of dynamic range
  for (std::size_t i = 0; i < raw.rows(); ++i) {
    const float* src = raw.row(i);
    float* dst = out.row(i);
    for (std::size_t j = 0; j < raw.cols(); ++j) {
      const float v = src[j];
      if (v == kNotDetectedRssi || v <= min_rssi) {
        dst[j] = 0.0f;
        continue;
      }
      float norm = (v - min_rssi) / range;  // 0 (weakest) .. 1 (strongest)
      if (norm > 1.0f) norm = 1.0f;
      if (rep == RssiRepresentation::kPowed) {
        norm = static_cast<float>(std::pow(norm, powed_exponent));
      }
      dst[j] = norm;
    }
  }
  return out;
}

void Standardizer::fit(const linalg::Mat& x) {
  NOBLE_EXPECTS(x.rows() >= 1);
  mean_ = linalg::col_mean(x);
  const auto var = linalg::col_var(x);
  inv_std_.resize(var.size());
  for (std::size_t j = 0; j < var.size(); ++j) {
    const float sd = std::sqrt(var[j]);
    inv_std_[j] = sd > 1e-8f ? 1.0f / sd : 1.0f;
  }
}

linalg::Mat Standardizer::transform(const linalg::Mat& x) const {
  NOBLE_EXPECTS(fitted());
  NOBLE_EXPECTS(x.cols() == mean_.size());
  linalg::Mat out(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* src = x.row(i);
    float* dst = out.row(i);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      dst[j] = (src[j] - mean_[j]) * inv_std_[j];
    }
  }
  return out;
}

linalg::Mat Standardizer::inverse_transform(const linalg::Mat& z) const {
  NOBLE_EXPECTS(fitted());
  NOBLE_EXPECTS(z.cols() == mean_.size());
  linalg::Mat out(z.rows(), z.cols());
  for (std::size_t i = 0; i < z.rows(); ++i) {
    const float* src = z.row(i);
    float* dst = out.row(i);
    for (std::size_t j = 0; j < z.cols(); ++j) {
      dst[j] = src[j] / inv_std_[j] + mean_[j];
    }
  }
  return out;
}

linalg::Mat one_hot(const std::vector<int>& ids, std::size_t num_classes) {
  linalg::Mat out(ids.size(), num_classes);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    NOBLE_EXPECTS(ids[i] >= 0 && static_cast<std::size_t>(ids[i]) < num_classes);
    out(i, static_cast<std::size_t>(ids[i])) = 1.0f;
  }
  return out;
}

}  // namespace noble::data
