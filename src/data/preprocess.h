// Input-feature preprocessing for Wi-Fi fingerprints.
//
// The paper normalizes the input vector (§IV-A). This module implements the
// two representations standard in the UJIIndoorLoc literature:
//  * kLinear: not-detected -> 0, else linearly rescaled signal strength
//    in [0, 1] (stronger signal -> larger value);
//  * kPowed: same but raised to an exponent, emphasizing strong APs
//    (Torres-Sospedra et al.'s "powed" representation).
#ifndef NOBLE_DATA_PREPROCESS_H_
#define NOBLE_DATA_PREPROCESS_H_

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace noble::data {

/// RSSI-to-feature transformation choice.
enum class RssiRepresentation {
  kLinear,
  kPowed,
};

/// Converts raw dBm / sentinel RSSI rows to normalized features in [0, 1].
/// `min_rssi` is the weakest observable signal (maps to 0); detection
/// failures map to exactly 0.
linalg::Mat normalize_rssi(const linalg::Mat& raw,
                           RssiRepresentation rep = RssiRepresentation::kPowed,
                           float min_rssi = kMinRssiDbm, double powed_exponent = 2.0);

/// Column-wise standardization fitted on train data and applied to any split
/// (used by the IMU pipeline, whose features are not bounded like RSSI).
class Standardizer {
 public:
  /// Learns per-column mean and standard deviation from x.
  void fit(const linalg::Mat& x);
  /// Applies (x - mean) / std columnwise; columns with ~zero std pass
  /// through centered.
  linalg::Mat transform(const linalg::Mat& x) const;
  /// Inverse of `transform` (used to map standardized regression outputs
  /// back to meters).
  linalg::Mat inverse_transform(const linalg::Mat& z) const;
  bool fitted() const { return !mean_.empty(); }

 private:
  std::vector<float> mean_, inv_std_;
};

/// One-hot encodes integer ids in [0, num_classes) into an n x num_classes
/// matrix.
linalg::Mat one_hot(const std::vector<int>& ids, std::size_t num_classes);

}  // namespace noble::data

#endif  // NOBLE_DATA_PREPROCESS_H_
