#include "data/metrics.h"

#include "common/check.h"
#include "common/stats.h"

namespace noble::data {

std::vector<double> position_errors(const std::vector<geo::Point2>& predicted,
                                    const std::vector<geo::Point2>& truth) {
  NOBLE_EXPECTS(predicted.size() == truth.size());
  std::vector<double> errs(predicted.size());
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    errs[i] = geo::distance(predicted[i], truth[i]);
  }
  return errs;
}

ErrorStats summarize_errors(const std::vector<double>& errors) {
  ErrorStats s;
  s.count = errors.size();
  s.mean = mean(errors);
  s.median = median(errors);
  s.p75 = percentile(errors, 75.0);
  s.p90 = percentile(errors, 90.0);
  s.rms = rms(errors);
  s.max = max_value(errors);
  return s;
}

double hit_rate(const std::vector<int>& predicted, const std::vector<int>& truth) {
  NOBLE_EXPECTS(predicted.size() == truth.size());
  if (predicted.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == truth[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predicted.size());
}

double structure_score(const std::vector<geo::Point2>& predicted,
                       const geo::FloorPlan& plan) {
  if (predicted.empty()) return 0.0;
  std::size_t inside = 0;
  for (const auto& p : predicted) {
    if (plan.accessible(p)) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(predicted.size());
}

double structure_score(const std::vector<geo::Point2>& predicted,
                       const geo::PathGraph& walkways, double tolerance) {
  NOBLE_EXPECTS(tolerance >= 0.0);
  if (predicted.empty()) return 0.0;
  std::size_t near = 0;
  for (const auto& p : predicted) {
    if (walkways.distance_to_path(p) <= tolerance) ++near;
  }
  return static_cast<double>(near) / static_cast<double>(predicted.size());
}

}  // namespace noble::data
