// Evaluation metrics: position error (the paper's headline metric),
// classification hit rates (Table I) and structure-awareness scores that
// quantify Fig. 4/Fig. 5 ("do predictions land on the map?").
#ifndef NOBLE_DATA_METRICS_H_
#define NOBLE_DATA_METRICS_H_

#include <vector>

#include "geo/floorplan.h"
#include "geo/pathgraph.h"
#include "geo/point.h"

namespace noble::data {

/// Summary statistics of a position-error distribution (meters).
struct ErrorStats {
  double mean = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double rms = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Per-sample Euclidean distances between predictions and ground truth.
std::vector<double> position_errors(const std::vector<geo::Point2>& predicted,
                                    const std::vector<geo::Point2>& truth);

/// Distribution summary of a vector of errors.
ErrorStats summarize_errors(const std::vector<double>& errors);

/// Fraction of predictions equal to the truth (building/floor/class hit rate).
double hit_rate(const std::vector<int>& predicted, const std::vector<int>& truth);

/// Fraction of predicted positions lying in the accessible set of the plan —
/// the quantitative version of the Fig. 4 structure comparison.
double structure_score(const std::vector<geo::Point2>& predicted,
                       const geo::FloorPlan& plan);

/// Fraction of predicted positions within `tolerance` meters of the walkway
/// network — the outdoor (Fig. 5) analogue.
double structure_score(const std::vector<geo::Point2>& predicted,
                       const geo::PathGraph& walkways, double tolerance);

}  // namespace noble::data

#endif  // NOBLE_DATA_METRICS_H_
