// Canned experiment setups shared by benchmarks, examples and integration
// tests. Each builder constructs the synthetic world, simulates data
// collection, and splits it — everything seeded and env-scalable
// (NOBLE_SCALE multiplies sample counts; see common/config.h).
#ifndef NOBLE_CORE_EXPERIMENT_H_
#define NOBLE_CORE_EXPERIMENT_H_

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "geo/campus.h"
#include "sim/imu.h"
#include "sim/wifi.h"

namespace noble::core {

/// A ready-to-run Wi-Fi experiment: world, radio environment, data splits.
struct WifiExperiment {
  geo::IndoorWorld world;
  std::unique_ptr<sim::WifiWorld> wifi;
  data::WifiSplit split;
};

/// Sizing knobs for the Wi-Fi experiments.
struct WifiExperimentConfig {
  /// Total collected samples (before split), scaled by NOBLE_SCALE.
  std::size_t total_samples = 9000;
  double val_frac = 0.12;
  double test_frac = 0.20;
  sim::WifiConfig radio;
  std::uint64_t seed = 2021;
};

/// UJI-like three-building campus experiment (§IV, Tables I & II).
WifiExperiment make_uji_experiment(const WifiExperimentConfig& config = {});

/// IPIN-like single-building experiment (§IV-B text).
WifiExperiment make_ipin_experiment(WifiExperimentConfig config = {});

/// A ready-to-run IMU experiment: outdoor world and path splits.
struct ImuExperiment {
  geo::OutdoorWorld world;
  data::ImuSplit split;
};

/// Sizing knobs for the IMU experiment (§V-A protocol).
struct ImuExperimentConfig {
  /// Number of constructed paths (paper: 6857), scaled by NOBLE_SCALE.
  std::size_t num_paths = 4000;
  /// Total walking time across the two recordings (paper: ~75 min).
  double total_walk_time_s = 4500.0;
  std::size_t num_walks = 2;
  /// Readings per segment window after resampling (paper raw: 768;
  /// overridable via NOBLE_IMU_READINGS).
  std::size_t readings_per_segment = 32;
  std::size_t max_segments = 50;
  double val_frac = 0.16;  // paper: 4389 / 1096 / 1372
  double test_frac = 0.20;
  sim::ImuConfig imu;
  std::uint64_t seed = 2021;
};

/// Campus IMU tracking experiment (§V, Table III).
ImuExperiment make_imu_experiment(const ImuExperimentConfig& config = {});

}  // namespace noble::core

#endif  // NOBLE_CORE_EXPERIMENT_H_
