// Evaluation harness: computes the metrics the paper reports (Tables I-III)
// and prints paper-style rows with the published numbers alongside.
#ifndef NOBLE_CORE_EVALUATE_H_
#define NOBLE_CORE_EVALUATE_H_

#include <string>

#include "core/noble_imu.h"
#include "core/noble_wifi.h"
#include "data/metrics.h"

namespace noble::core {

/// Full Wi-Fi localization report (Table I metrics).
struct WifiReport {
  data::ErrorStats errors;
  double building_accuracy = 0.0;
  double floor_accuracy = 0.0;
  double class_accuracy = 0.0;
  /// Fraction of predictions inside the accessible map (Fig. 4 metric).
  double structure_score = 0.0;
};

/// Position-only report for regression baselines (Table II metrics).
struct PositionReport {
  data::ErrorStats errors;
  double structure_score = 0.0;
};

/// Evaluates NObLe Wi-Fi predictions against ground truth. `plan` may be
/// null (skips the structure score).
WifiReport evaluate_wifi(const std::vector<WifiPrediction>& predictions,
                         const data::WifiDataset& truth, const SpaceQuantizer& quantizer,
                         const geo::FloorPlan* plan);

/// Evaluates raw position predictions (baselines).
PositionReport evaluate_positions(const std::vector<geo::Point2>& predictions,
                                  const data::WifiDataset& truth,
                                  const geo::FloorPlan* plan);

/// Evaluates IMU tracking predictions; structure is measured against the
/// walkway network with `path_tolerance` meters (Fig. 5 metric).
PositionReport evaluate_imu(const std::vector<geo::Point2>& predictions,
                            const data::ImuDataset& truth,
                            const geo::PathGraph* walkways, double path_tolerance = 2.0);

/// Extracts decoded positions from NObLe predictions.
std::vector<geo::Point2> positions_of(const std::vector<WifiPrediction>& preds);
std::vector<geo::Point2> positions_of(const std::vector<ImuPrediction>& preds);

/// Printing helpers used by every benchmark binary: a fixed-width row of
/// "metric | paper | measured".
void print_table_header(const std::string& title);
void print_metric_row(const std::string& name, const std::string& paper_value,
                      double measured, const std::string& unit = "");

}  // namespace noble::core

#endif  // NOBLE_CORE_EVALUATE_H_
