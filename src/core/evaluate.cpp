#include "core/evaluate.h"

#include <cstdio>

#include "common/check.h"

namespace noble::core {

namespace {

std::vector<geo::Point2> truth_positions(const data::WifiDataset& ds) {
  std::vector<geo::Point2> out;
  out.reserve(ds.size());
  for (const auto& s : ds.samples) out.push_back(s.position);
  return out;
}

}  // namespace

WifiReport evaluate_wifi(const std::vector<WifiPrediction>& predictions,
                         const data::WifiDataset& truth, const SpaceQuantizer& quantizer,
                         const geo::FloorPlan* plan) {
  NOBLE_EXPECTS(predictions.size() == truth.size());
  WifiReport report;
  const auto pred_pos = positions_of(predictions);
  report.errors = data::summarize_errors(
      data::position_errors(pred_pos, truth_positions(truth)));

  std::vector<int> pb, pf, pc, tb, tf, tc;
  pb.reserve(predictions.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    pb.push_back(predictions[i].building);
    pf.push_back(predictions[i].floor);
    pc.push_back(predictions[i].fine_class);
    tb.push_back(truth.samples[i].building);
    tf.push_back(truth.samples[i].floor);
    tc.push_back(quantizer.fine_class_of(truth.samples[i].position));
  }
  report.building_accuracy = data::hit_rate(pb, tb);
  report.floor_accuracy = data::hit_rate(pf, tf);
  report.class_accuracy = data::hit_rate(pc, tc);
  if (plan != nullptr) report.structure_score = data::structure_score(pred_pos, *plan);
  return report;
}

PositionReport evaluate_positions(const std::vector<geo::Point2>& predictions,
                                  const data::WifiDataset& truth,
                                  const geo::FloorPlan* plan) {
  NOBLE_EXPECTS(predictions.size() == truth.size());
  PositionReport report;
  report.errors = data::summarize_errors(
      data::position_errors(predictions, truth_positions(truth)));
  if (plan != nullptr) {
    report.structure_score = data::structure_score(predictions, *plan);
  }
  return report;
}

PositionReport evaluate_imu(const std::vector<geo::Point2>& predictions,
                            const data::ImuDataset& truth,
                            const geo::PathGraph* walkways, double path_tolerance) {
  NOBLE_EXPECTS(predictions.size() == truth.size());
  std::vector<geo::Point2> ends;
  ends.reserve(truth.size());
  for (const auto& p : truth.paths) ends.push_back(p.end);
  PositionReport report;
  report.errors = data::summarize_errors(data::position_errors(predictions, ends));
  if (walkways != nullptr) {
    report.structure_score = data::structure_score(predictions, *walkways, path_tolerance);
  }
  return report;
}

std::vector<geo::Point2> positions_of(const std::vector<WifiPrediction>& preds) {
  std::vector<geo::Point2> out;
  out.reserve(preds.size());
  for (const auto& p : preds) out.push_back(p.position);
  return out;
}

std::vector<geo::Point2> positions_of(const std::vector<ImuPrediction>& preds) {
  std::vector<geo::Point2> out;
  out.reserve(preds.size());
  for (const auto& p : preds) out.push_back(p.position);
  return out;
}

void print_table_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-38s %16s %16s\n", "METRIC", "PAPER", "MEASURED");
  std::printf("%.*s\n", 72, "------------------------------------------------------------------------");
}

void print_metric_row(const std::string& name, const std::string& paper_value,
                      double measured, const std::string& unit) {
  std::printf("%-38s %16s %13.3f %s\n", name.c_str(), paper_value.c_str(), measured,
              unit.c_str());
}

}  // namespace noble::core
