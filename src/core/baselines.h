// Comparison models from the paper's evaluation.
//
// Wi-Fi (Table II): Deep Regression, Deep Regression Projection ([8]-style
// map projection), Manifold Embedding regression (Isomap / LLE features into
// a two-hidden-layer DNN), plus a RADAR-style weighted-kNN fingerprint
// matcher (§II background).
// IMU (Table III): Deep Regression on raw path features, and a map-assisted
// dead-reckoning baseline reproducing [8]'s mechanism (coarse-grained ML
// displacement per segment + turn-triggered map snapping).
#ifndef NOBLE_CORE_BASELINES_H_
#define NOBLE_CORE_BASELINES_H_

#include <cstdint>
#include <memory>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "geo/floorplan.h"
#include "geo/pathgraph.h"
#include "manifold/embedding.h"
#include "nn/network.h"
#include "nn/trainer.h"

namespace noble::core {

/// Shared hyperparameters of the regression baselines (same capacity as
/// NObLe per §IV-B: identical input and network size).
struct RegressionConfig {
  std::size_t hidden_units = 128;
  double learning_rate = 2e-3;
  double lr_decay = 0.97;
  std::size_t epochs = 25;
  std::size_t batch_size = 64;
  std::size_t patience = 6;
  data::RssiRepresentation representation = data::RssiRepresentation::kPowed;
  std::uint64_t seed = 43;
};

/// DNN trained with mean squared error to map signals directly to
/// coordinates (the paper's "Deep Regression").
class DeepRegressionWifi {
 public:
  explicit DeepRegressionWifi(RegressionConfig config = {});

  nn::TrainResult fit(const data::WifiDataset& train,
                      const data::WifiDataset* val = nullptr);
  std::vector<geo::Point2> predict(const data::WifiDataset& test);
  bool fitted() const { return fitted_; }
  nn::Sequential& network() { return net_; }
  std::size_t macs_per_inference() const { return net_.macs_per_inference(input_dim_); }

 private:
  RegressionConfig config_;
  nn::Sequential net_;
  data::Standardizer target_scaler_;
  std::size_t input_dim_ = 0;
  bool fitted_ = false;
};

/// Deep Regression followed by projection of off-map predictions to the
/// nearest accessible position (the paper's "Deep Regression Projection").
class RegressionProjectionWifi {
 public:
  RegressionProjectionWifi(RegressionConfig config, const geo::FloorPlan& plan);

  nn::TrainResult fit(const data::WifiDataset& train,
                      const data::WifiDataset* val = nullptr);
  std::vector<geo::Point2> predict(const data::WifiDataset& test);

 private:
  DeepRegressionWifi inner_;
  const geo::FloorPlan* plan_;
};

/// Manifold embedding choice for ManifoldRegressionWifi.
enum class ManifoldMethod { kIsomap, kLle };

/// Hyperparameters of the manifold baselines.
struct ManifoldRegressionConfig {
  RegressionConfig regression;
  ManifoldMethod method = ManifoldMethod::kIsomap;
  /// Embedding dimension (paper: 400; default smaller for the single-core
  /// substrate, see DESIGN.md — override with NOBLE_MANIFOLD_DIM).
  std::size_t embedding_dim = 64;
  /// kNN graph size.
  std::size_t k = 12;
  /// Training samples used to fit the embedder (subsampled for tractability;
  /// all samples are then transformed through the fitted embedding).
  std::size_t fit_subsample = 1500;
  std::uint64_t seed = 45;
};

/// Isomap/LLE embedding of the signal space followed by a two-hidden-layer
/// DNN regressor from embedding to coordinates (§IV-B "Manifold Embedding").
class ManifoldRegressionWifi {
 public:
  explicit ManifoldRegressionWifi(ManifoldRegressionConfig config = {});

  nn::TrainResult fit(const data::WifiDataset& train,
                      const data::WifiDataset* val = nullptr);
  std::vector<geo::Point2> predict(const data::WifiDataset& test);

 private:
  linalg::Mat embed(const linalg::Mat& features) const;

  ManifoldRegressionConfig config_;
  std::unique_ptr<manifold::Embedder> embedder_;
  nn::Sequential net_;
  data::Standardizer embed_scaler_;
  data::Standardizer target_scaler_;
  bool fitted_ = false;
};

/// RADAR-style weighted k-nearest-neighbor fingerprint matcher: position is
/// the inverse-distance-weighted average of the k closest radio-map entries;
/// building/floor by neighbor majority.
class KnnFingerprintWifi {
 public:
  explicit KnnFingerprintWifi(std::size_t k = 5,
                              data::RssiRepresentation rep =
                                  data::RssiRepresentation::kPowed);

  void fit(const data::WifiDataset& train);
  /// Returns positions; `buildings`/`floors` receive majority votes when
  /// non-null.
  std::vector<geo::Point2> predict(const data::WifiDataset& test,
                                   std::vector<int>* buildings = nullptr,
                                   std::vector<int>* floors = nullptr) const;

 private:
  std::size_t k_;
  data::RssiRepresentation rep_;
  linalg::Mat train_features_;
  std::vector<geo::Point2> train_positions_;
  std::vector<int> train_buildings_, train_floors_;
};

/// DNN trained with MSE from raw IMU path features (plus start position) to
/// the ending coordinates — Table III's "Deep Regression Model".
class DeepRegressionImu {
 public:
  explicit DeepRegressionImu(RegressionConfig config = {});

  nn::TrainResult fit(const data::ImuDataset& train,
                      const data::ImuDataset* val = nullptr);
  std::vector<geo::Point2> predict(const data::ImuDataset& test);

 private:
  linalg::Mat build_inputs(const data::ImuDataset& ds) const;

  RegressionConfig config_;
  nn::Sequential net_;
  data::Standardizer input_scaler_;
  data::Standardizer target_scaler_;
  bool fitted_ = false;
};

/// Map-assisted pedestrian dead reckoning reproducing [8]'s mechanism:
///  * per-segment travel DISTANCE predicted by coarse-grained ML
///    (uniform-weight kNN over per-channel RMS energy features — [8] used
///    nearest neighbors / random forest on handcrafted features);
///  * HEADING maintained by integrating the yaw gyroscope from the path's
///    initial orientation (dead reckoning proper — this is where drift
///    accumulates);
///  * MAP CORRECTION: when a segment contains a detected turn, the estimate
///    is snapped to the walkway network ("turns can only be made on
///    specific points on the map"), and again at the path end.
/// Energy-only features and gyro-integrated heading keep the baseline
/// honest: direction-bearing features would let a segment bank memorize the
/// duplicate windows shared between randomly split paths (§V-A artifact).
class MapAssistedDeadReckoning {
 public:
  struct Config {
    std::size_t k = 15;
    /// Absolute integrated yaw (rad) over a segment that flags a turn.
    double turn_threshold_rad = 0.6;
    /// Maximum labeled segments kept in the bank (memory bound).
    std::size_t max_bank = 20000;
  };

  MapAssistedDeadReckoning(Config config, const geo::PathGraph& walkways);

  /// Builds the labeled segment bank from training paths (per-segment
  /// displacements come from the reference coordinates, §V-A).
  void fit(const data::ImuDataset& train);
  std::vector<geo::Point2> predict(const data::ImuDataset& test) const;

 private:
  /// 6-dim energy descriptor (per-channel RMS) of one raw segment window.
  std::vector<float> coarse_features(const float* segment) const;

  Config config_;
  const geo::PathGraph* walkways_;
  std::size_t segment_dim_ = 0;
  linalg::Mat bank_features_;
  std::vector<double> bank_distances_;  // per-segment travel distance labels
};

}  // namespace noble::core

#endif  // NOBLE_CORE_BASELINES_H_
