#include "core/quantize.h"

#include <cmath>

#include "common/check.h"
#include "kernels/kernels.h"
#include "nn/dense.h"
#include "nn/network.h"

namespace noble::core {

void SpaceQuantizer::fit(const std::vector<geo::Point2>& positions,
                         const QuantizeConfig& config) {
  NOBLE_EXPECTS(!positions.empty());
  NOBLE_EXPECTS(config.tau > 0.0);
  NOBLE_EXPECTS(!config.use_coarse || config.coarse_l > config.tau);
  NOBLE_EXPECTS(config.adjacency_ring >= 1);
  NOBLE_EXPECTS(config.adjacency_value >= 0.0f && config.adjacency_value <= 1.0f);
  config_ = config;
  fine_.fit(positions, config.tau);
  fine_to_coarse_.clear();
  if (config.use_coarse) {
    coarse_.fit(positions, config.coarse_l);
    fine_to_coarse_.resize(fine_.num_classes());
    for (std::size_t c = 0; c < fine_.num_classes(); ++c) {
      fine_to_coarse_[c] = coarse_.nearest_class(fine_.center(static_cast<int>(c)));
    }
  }
  fitted_ = true;
}

void SpaceQuantizer::restore(const QuantizeConfig& config,
                             const geo::GridQuantizerState& fine,
                             const geo::GridQuantizerState* coarse) {
  NOBLE_EXPECTS(config.tau > 0.0);
  NOBLE_EXPECTS(config.use_coarse == (coarse != nullptr));
  config_ = config;
  fine_.restore_state(fine);
  coarse_ = geo::GridQuantizer();
  fine_to_coarse_.clear();
  if (coarse != nullptr) {
    coarse_.restore_state(*coarse);
    fine_to_coarse_.resize(fine_.num_classes());
    for (std::size_t c = 0; c < fine_.num_classes(); ++c) {
      fine_to_coarse_[c] = coarse_.nearest_class(fine_.center(static_cast<int>(c)));
    }
  }
  fitted_ = true;
}

LabelLayout SpaceQuantizer::layout(std::size_t num_buildings,
                                   std::size_t num_floors) const {
  NOBLE_EXPECTS(fitted_);
  LabelLayout l;
  l.num_buildings = num_buildings;
  l.num_floors = num_floors;
  l.num_fine = fine_.num_classes();
  l.num_coarse = config_.use_coarse ? coarse_.num_classes() : 0;
  return l;
}

linalg::Mat SpaceQuantizer::build_targets(const LabelLayout& layout,
                                          const std::vector<geo::Point2>& positions,
                                          const std::vector<int>& buildings,
                                          const std::vector<int>& floors) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(buildings.empty() || buildings.size() == positions.size());
  NOBLE_EXPECTS(floors.empty() || floors.size() == positions.size());
  NOBLE_EXPECTS(layout.num_buildings == 0 || !buildings.empty());
  NOBLE_EXPECTS(layout.num_floors == 0 || !floors.empty());

  linalg::Mat t(positions.size(), layout.total());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    float* row = t.row(i);
    if (layout.num_buildings > 0) {
      const int b = buildings[i];
      NOBLE_EXPECTS(b >= 0 && static_cast<std::size_t>(b) < layout.num_buildings);
      row[layout.building_offset() + static_cast<std::size_t>(b)] = 1.0f;
    }
    if (layout.num_floors > 0) {
      const int f = floors[i];
      NOBLE_EXPECTS(f >= 0 && static_cast<std::size_t>(f) < layout.num_floors);
      row[layout.floor_offset() + static_cast<std::size_t>(f)] = 1.0f;
    }
    const int c = fine_.nearest_class(positions[i]);
    row[layout.fine_offset() + static_cast<std::size_t>(c)] = 1.0f;
    if (config_.adjacency_labels) {
      for (int nb : fine_.neighbor_classes(positions[i], config_.adjacency_ring)) {
        float& cell = row[layout.fine_offset() + static_cast<std::size_t>(nb)];
        if (cell < config_.adjacency_value) cell = config_.adjacency_value;
      }
    }
    if (layout.num_coarse > 0) {
      const int r = coarse_.nearest_class(positions[i]);
      row[layout.coarse_offset() + static_cast<std::size_t>(r)] = 1.0f;
    }
  }
  return t;
}

namespace {

int argmax_block(const float* logits, std::size_t offset, std::size_t count) {
  int best = 0;
  float best_v = logits[offset];
  for (std::size_t j = 1; j < count; ++j) {
    if (logits[offset + j] > best_v) {
      best_v = logits[offset + j];
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

DecodedPrediction SpaceQuantizer::decode(const LabelLayout& layout,
                                         const float* logits) const {
  NOBLE_EXPECTS(fitted_);
  DecodedPrediction out;
  if (layout.num_buildings > 0) {
    out.building = argmax_block(logits, layout.building_offset(), layout.num_buildings);
  }
  if (layout.num_floors > 0) {
    out.floor = argmax_block(logits, layout.floor_offset(), layout.num_floors);
  }
  out.fine_class = argmax_block(logits, layout.fine_offset(), layout.num_fine);
  out.position = fine_.center(out.fine_class);
  if (layout.num_coarse > 0) {
    out.coarse_class = argmax_block(logits, layout.coarse_offset(), layout.num_coarse);
  }
  return out;
}

DecodedPrediction SpaceQuantizer::decode_hierarchical(const LabelLayout& layout,
                                                      const float* logits) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(layout.num_coarse > 0);
  DecodedPrediction out = decode(layout, logits);
  // Restrict the fine argmax to the predicted coarse cell.
  int best = -1;
  float best_v = 0.0f;
  for (std::size_t c = 0; c < layout.num_fine; ++c) {
    if (fine_to_coarse_[c] != out.coarse_class) continue;
    const float v = logits[layout.fine_offset() + c];
    if (best < 0 || v > best_v) {
      best = static_cast<int>(c);
      best_v = v;
    }
  }
  if (best >= 0) {
    out.fine_class = best;
    out.position = fine_.center(best);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Weight quantization for serving backends.
// ---------------------------------------------------------------------------

namespace {

/// Rounds to the nearest int8, clamped to the symmetric range [-127, 127]
/// (the -128 slot is unused so the range stays symmetric around zero).
std::int8_t round_to_int8(float scaled) {
  const long r = std::lround(scaled);
  if (r > 127) return 127;
  if (r < -127) return -127;
  return static_cast<std::int8_t>(r);
}

}  // namespace

QuantizedDense quantize_dense(const nn::Dense& layer) {
  const linalg::Mat& w = layer.weights();  // (in x out), row-major
  const linalg::Mat& b = layer.bias();
  QuantizedDense out;
  out.in_dim = layer.in_dim();
  out.out_dim = layer.out();
  out.weights.assign(out.in_dim * out.out_dim, 0);
  out.scales.assign(out.out_dim, 0.0f);
  out.bias.assign(b.row(0), b.row(0) + out.out_dim);
  for (std::size_t j = 0; j < out.out_dim; ++j) {
    float max_abs = 0.0f;
    for (std::size_t k = 0; k < out.in_dim; ++k) {
      const float a = std::fabs(w(k, j));
      if (a > max_abs) max_abs = a;
    }
    if (max_abs == 0.0f) continue;  // all-zero column: weights stay 0
    const float scale = max_abs / 127.0f;
    out.scales[j] = scale;
    const float inv_scale = 127.0f / max_abs;
    std::int8_t* col = out.weights.data() + j * out.in_dim;
    for (std::size_t k = 0; k < out.in_dim; ++k) {
      col[k] = round_to_int8(w(k, j) * inv_scale);
    }
  }
  return out;
}

void quantized_dense_infer(const QuantizedDense& layer, const linalg::Mat& x,
                           linalg::Mat& y) {
  // Per-row dynamic quantization, int32 accumulation and dequant all live in
  // the dispatched kernel now; the bias rides the epilogue. Zero rows still
  // quantize to zero (row scale 0) so the output degenerates to the bias,
  // exactly as this loop always behaved.
  kernels::QuantizedView view;
  view.weights = layer.weights.data();
  view.scales = layer.scales.data();
  view.in_dim = layer.in_dim;
  view.out_dim = layer.out_dim;
  kernels::Epilogue ep;
  ep.bias = layer.bias.data();
  kernels::quantized_forward(x, view, ep, y);
}

QuantizedNetwork::QuantizedNetwork(const nn::Sequential& net) : net_(&net) {
  stages_.resize(net.layer_count());
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (const auto* dense = dynamic_cast<const nn::Dense*>(&net.layer(i))) {
      stages_[i] = quantize_dense(*dense);
      ++num_quantized_;
    }
  }
  NOBLE_ENSURES(num_quantized_ >= 1);  // a network with no dense layers has no GEMM to quantize
}

linalg::Mat QuantizedNetwork::predict(const linalg::Mat& x) const {
  NOBLE_EXPECTS(!stages_.empty());
  linalg::Mat cur, next;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    // Stage 0 reads `x` in place — both infer paths take separate in/out
    // matrices, so the input never needs a deep copy.
    const linalg::Mat& in = i == 0 ? x : cur;
    if (stages_[i].has_value()) {
      quantized_dense_infer(*stages_[i], in, next);
    } else {
      net_->layer(i).infer(in, next);
    }
    std::swap(cur, next);
  }
  return cur;
}

std::size_t QuantizedNetwork::quantized_parameter_bytes() const {
  std::size_t bytes = 0;
  for (const auto& stage : stages_) {
    if (!stage.has_value()) continue;
    bytes += stage->weights.size() * sizeof(std::int8_t) +
             stage->scales.size() * sizeof(float) + stage->bias.size() * sizeof(float);
  }
  return bytes;
}

}  // namespace noble::core
