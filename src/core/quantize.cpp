#include "core/quantize.h"

#include "common/check.h"

namespace noble::core {

void SpaceQuantizer::fit(const std::vector<geo::Point2>& positions,
                         const QuantizeConfig& config) {
  NOBLE_EXPECTS(!positions.empty());
  NOBLE_EXPECTS(config.tau > 0.0);
  NOBLE_EXPECTS(!config.use_coarse || config.coarse_l > config.tau);
  NOBLE_EXPECTS(config.adjacency_ring >= 1);
  NOBLE_EXPECTS(config.adjacency_value >= 0.0f && config.adjacency_value <= 1.0f);
  config_ = config;
  fine_.fit(positions, config.tau);
  fine_to_coarse_.clear();
  if (config.use_coarse) {
    coarse_.fit(positions, config.coarse_l);
    fine_to_coarse_.resize(fine_.num_classes());
    for (std::size_t c = 0; c < fine_.num_classes(); ++c) {
      fine_to_coarse_[c] = coarse_.nearest_class(fine_.center(static_cast<int>(c)));
    }
  }
  fitted_ = true;
}

void SpaceQuantizer::restore(const QuantizeConfig& config,
                             const geo::GridQuantizerState& fine,
                             const geo::GridQuantizerState* coarse) {
  NOBLE_EXPECTS(config.tau > 0.0);
  NOBLE_EXPECTS(config.use_coarse == (coarse != nullptr));
  config_ = config;
  fine_.restore_state(fine);
  coarse_ = geo::GridQuantizer();
  fine_to_coarse_.clear();
  if (coarse != nullptr) {
    coarse_.restore_state(*coarse);
    fine_to_coarse_.resize(fine_.num_classes());
    for (std::size_t c = 0; c < fine_.num_classes(); ++c) {
      fine_to_coarse_[c] = coarse_.nearest_class(fine_.center(static_cast<int>(c)));
    }
  }
  fitted_ = true;
}

LabelLayout SpaceQuantizer::layout(std::size_t num_buildings,
                                   std::size_t num_floors) const {
  NOBLE_EXPECTS(fitted_);
  LabelLayout l;
  l.num_buildings = num_buildings;
  l.num_floors = num_floors;
  l.num_fine = fine_.num_classes();
  l.num_coarse = config_.use_coarse ? coarse_.num_classes() : 0;
  return l;
}

linalg::Mat SpaceQuantizer::build_targets(const LabelLayout& layout,
                                          const std::vector<geo::Point2>& positions,
                                          const std::vector<int>& buildings,
                                          const std::vector<int>& floors) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(buildings.empty() || buildings.size() == positions.size());
  NOBLE_EXPECTS(floors.empty() || floors.size() == positions.size());
  NOBLE_EXPECTS(layout.num_buildings == 0 || !buildings.empty());
  NOBLE_EXPECTS(layout.num_floors == 0 || !floors.empty());

  linalg::Mat t(positions.size(), layout.total());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    float* row = t.row(i);
    if (layout.num_buildings > 0) {
      const int b = buildings[i];
      NOBLE_EXPECTS(b >= 0 && static_cast<std::size_t>(b) < layout.num_buildings);
      row[layout.building_offset() + static_cast<std::size_t>(b)] = 1.0f;
    }
    if (layout.num_floors > 0) {
      const int f = floors[i];
      NOBLE_EXPECTS(f >= 0 && static_cast<std::size_t>(f) < layout.num_floors);
      row[layout.floor_offset() + static_cast<std::size_t>(f)] = 1.0f;
    }
    const int c = fine_.nearest_class(positions[i]);
    row[layout.fine_offset() + static_cast<std::size_t>(c)] = 1.0f;
    if (config_.adjacency_labels) {
      for (int nb : fine_.neighbor_classes(positions[i], config_.adjacency_ring)) {
        float& cell = row[layout.fine_offset() + static_cast<std::size_t>(nb)];
        if (cell < config_.adjacency_value) cell = config_.adjacency_value;
      }
    }
    if (layout.num_coarse > 0) {
      const int r = coarse_.nearest_class(positions[i]);
      row[layout.coarse_offset() + static_cast<std::size_t>(r)] = 1.0f;
    }
  }
  return t;
}

namespace {

int argmax_block(const float* logits, std::size_t offset, std::size_t count) {
  int best = 0;
  float best_v = logits[offset];
  for (std::size_t j = 1; j < count; ++j) {
    if (logits[offset + j] > best_v) {
      best_v = logits[offset + j];
      best = static_cast<int>(j);
    }
  }
  return best;
}

}  // namespace

DecodedPrediction SpaceQuantizer::decode(const LabelLayout& layout,
                                         const float* logits) const {
  NOBLE_EXPECTS(fitted_);
  DecodedPrediction out;
  if (layout.num_buildings > 0) {
    out.building = argmax_block(logits, layout.building_offset(), layout.num_buildings);
  }
  if (layout.num_floors > 0) {
    out.floor = argmax_block(logits, layout.floor_offset(), layout.num_floors);
  }
  out.fine_class = argmax_block(logits, layout.fine_offset(), layout.num_fine);
  out.position = fine_.center(out.fine_class);
  if (layout.num_coarse > 0) {
    out.coarse_class = argmax_block(logits, layout.coarse_offset(), layout.num_coarse);
  }
  return out;
}

DecodedPrediction SpaceQuantizer::decode_hierarchical(const LabelLayout& layout,
                                                      const float* logits) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(layout.num_coarse > 0);
  DecodedPrediction out = decode(layout, logits);
  // Restrict the fine argmax to the predicted coarse cell.
  int best = -1;
  float best_v = 0.0f;
  for (std::size_t c = 0; c < layout.num_fine; ++c) {
    if (fine_to_coarse_[c] != out.coarse_class) continue;
    const float v = logits[layout.fine_offset() + c];
    if (best < 0 || v > best_v) {
      best = static_cast<int>(c);
      best_v = v;
    }
  }
  if (best >= 0) {
    out.fine_class = best;
    out.position = fine_.center(best);
  }
  return out;
}

}  // namespace noble::core
