// NObLe space quantization and multi-label target assembly (§III-B, §IV-A),
// plus int8 weight quantization for the serving backends.
//
// The output layer of a NObLe model is the concatenation of label blocks:
//   [ buildings | floors | fine classes c | coarse classes r ]
// trained jointly with binary cross-entropy on multi-hot targets. This module
// owns the geometry-to-label mapping: fitting the grid quantizers, building
// multi-hot target matrices (optionally with adjacency soft labels), and
// decoding predicted logits back to (building, floor, position).
//
// The second half of the module quantizes the *network* rather than the
// space: per-output-channel symmetric int8 weights plus a per-row dynamic
// activation scale give a deterministic integer forward path
// (QuantizedNetwork) that the engine's quantized replica backend serves
// from. Per-row activation scaling is what makes the path batch-invariant:
// a query's logits do not depend on what else was coalesced into its
// micro-batch, which is the property the engine equivalence harness checks.
#ifndef NOBLE_CORE_QUANTIZE_H_
#define NOBLE_CORE_QUANTIZE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/grid.h"
#include "linalg/matrix.h"

namespace noble::nn {
class Dense;
class Sequential;
}  // namespace noble::nn

namespace noble::core {

/// Quantization hyperparameters (ablatable; see DESIGN.md §5).
struct QuantizeConfig {
  /// Fine cell side tau in meters (paper: < 0.2 m on real UJI; default is
  /// coarser so the synthetic substrate trains in seconds — see DESIGN.md).
  double tau = 3.0;
  /// Coarse cell side l > tau for the hierarchical head r.
  double coarse_l = 12.0;
  /// Include the coarse label block.
  bool use_coarse = true;
  /// Mark occupied cells adjacent to the true cell as additional positives
  /// (the paper's remedy for class sparsity).
  bool adjacency_labels = true;
  /// Chebyshev ring radius of the adjacency neighborhood.
  int adjacency_ring = 1;
  /// Target value given to adjacent-cell positives (1.0 = full positives).
  float adjacency_value = 0.5f;

  bool operator==(const QuantizeConfig&) const = default;
};

/// Layout of the concatenated multi-label output vector.
struct LabelLayout {
  std::size_t num_buildings = 0;
  std::size_t num_floors = 0;
  std::size_t num_fine = 0;
  std::size_t num_coarse = 0;

  std::size_t building_offset() const { return 0; }
  std::size_t floor_offset() const { return num_buildings; }
  std::size_t fine_offset() const { return num_buildings + num_floors; }
  std::size_t coarse_offset() const { return fine_offset() + num_fine; }
  std::size_t total() const { return coarse_offset() + num_coarse; }
};

/// Decoded prediction for one sample.
struct DecodedPrediction {
  int building = -1;  ///< -1 when the layout has no building block.
  int floor = -1;     ///< -1 when the layout has no floor block.
  int fine_class = 0;
  int coarse_class = -1;
  geo::Point2 position;  ///< center of the predicted fine cell.
};

/// Fitted quantization state shared by models and benchmarks.
class SpaceQuantizer {
 public:
  SpaceQuantizer() = default;

  /// Fits fine (and optionally coarse) grids on training positions.
  void fit(const std::vector<geo::Point2>& positions, const QuantizeConfig& config);

  /// Rebuilds a fitted quantizer from exported grid snapshots — the serve
  /// artifact load path, which has no training positions. `coarse` must be
  /// non-null exactly when `config.use_coarse`; the fine-to-coarse map is
  /// recomputed from the restored grids.
  void restore(const QuantizeConfig& config, const geo::GridQuantizerState& fine,
               const geo::GridQuantizerState* coarse);

  bool fitted() const { return fitted_; }
  const QuantizeConfig& config() const { return config_; }
  const geo::GridQuantizer& fine() const { return fine_; }
  const geo::GridQuantizer& coarse() const { return coarse_; }
  std::size_t num_fine_classes() const { return fine_.num_classes(); }
  std::size_t num_coarse_classes() const {
    return config_.use_coarse ? coarse_.num_classes() : 0;
  }

  /// Layout for a model that also predicts buildings/floors (either may be 0).
  LabelLayout layout(std::size_t num_buildings, std::size_t num_floors) const;

  /// Multi-hot targets for positions (+ per-sample building/floor ids when
  /// the layout includes those blocks). All vectors must have equal length;
  /// pass empty vectors to skip a block.
  linalg::Mat build_targets(const LabelLayout& layout,
                            const std::vector<geo::Point2>& positions,
                            const std::vector<int>& buildings,
                            const std::vector<int>& floors) const;

  /// Argmax decode of one logits row under `layout`; the position is the
  /// predicted fine cell's center (the paper's inference lookup).
  DecodedPrediction decode(const LabelLayout& layout, const float* logits) const;

  /// Hierarchical decode (§III-B multi-granularity): first argmax the coarse
  /// block, then restrict the fine argmax to fine cells lying inside the
  /// predicted coarse cell (falling back to the unrestricted argmax when the
  /// restriction is empty). Requires a layout with a coarse block.
  DecodedPrediction decode_hierarchical(const LabelLayout& layout,
                                        const float* logits) const;

  /// Ground-truth fine class of a position (nearest occupied cell).
  int fine_class_of(const geo::Point2& p) const { return fine_.nearest_class(p); }

 private:
  QuantizeConfig config_;
  geo::GridQuantizer fine_;
  geo::GridQuantizer coarse_;
  /// fine class id -> coarse class id of its cell center (built on fit when
  /// the coarse level exists).
  std::vector<int> fine_to_coarse_;
  bool fitted_ = false;
};

// ---------------------------------------------------------------------------
// Weight quantization for serving backends.
// ---------------------------------------------------------------------------

/// One dense layer quantized to int8: per-output-channel symmetric weight
/// scales, float bias. Weights are stored column-major (weights[col * in_dim
/// + k]) so the integer dot products walk contiguous memory.
struct QuantizedDense {
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
  std::vector<std::int8_t> weights;  ///< column-major, out_dim x in_dim
  std::vector<float> scales;         ///< per-output-channel dequantization scale
  std::vector<float> bias;           ///< float bias added after dequantization
};

/// Quantizes a fitted dense layer's weights (symmetric, per output channel).
QuantizedDense quantize_dense(const nn::Dense& layer);

/// Integer dense forward with per-row dynamic activation quantization:
/// each input row is scaled to int8 by its own max-abs, accumulated in
/// int32 against the int8 weights and dequantized per output channel. Rows
/// are processed independently, so results are batch-invariant and fully
/// deterministic.
void quantized_dense_infer(const QuantizedDense& layer, const linalg::Mat& x,
                           linalg::Mat& y);

/// A Sequential's inference path with every Dense layer swapped for its int8
/// quantization; all other layers (batch norm, activations) run their normal
/// float `infer`. Holds a pointer to the source network for those
/// pass-through layers — the network must outlive the QuantizedNetwork.
class QuantizedNetwork {
 public:
  explicit QuantizedNetwork(const nn::Sequential& net);

  /// Mixed int8/float forward; row-independent (see quantized_dense_infer).
  linalg::Mat predict(const linalg::Mat& x) const;

  /// Dense layers that were quantized.
  std::size_t quantized_layer_count() const { return num_quantized_; }
  /// Bytes of quantized weight storage (int8 weights + float scales/bias).
  std::size_t quantized_parameter_bytes() const;

 private:
  const nn::Sequential* net_;
  /// Aligned with the source network's layers; engaged for quantized stages.
  std::vector<std::optional<QuantizedDense>> stages_;
  std::size_t num_quantized_ = 0;
};

}  // namespace noble::core

#endif  // NOBLE_CORE_QUANTIZE_H_
