#include "core/noble_wifi.h"

#include <algorithm>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace noble::core {

namespace {

/// Extracts positions / building ids / floor ids from a dataset.
void unpack(const data::WifiDataset& ds, std::vector<geo::Point2>& pos,
            std::vector<int>& b, std::vector<int>& f) {
  pos.reserve(ds.size());
  b.reserve(ds.size());
  f.reserve(ds.size());
  for (const auto& s : ds.samples) {
    pos.push_back(s.position);
    b.push_back(s.building);
    f.push_back(s.floor);
  }
}

}  // namespace

NobleWifiModel::NobleWifiModel(NobleWifiConfig config) : config_(std::move(config)) {
  NOBLE_EXPECTS(config_.hidden_units >= 2);
}

nn::TrainResult NobleWifiModel::fit(const data::WifiDataset& train,
                                    const data::WifiDataset* val) {
  NOBLE_EXPECTS(train.size() >= 4);
  input_dim_ = train.num_aps;

  std::vector<geo::Point2> pos;
  std::vector<int> bld, flr;
  unpack(train, pos, bld, flr);

  if (config_.predict_building) {
    num_buildings_ =
        static_cast<std::size_t>(*std::max_element(bld.begin(), bld.end())) + 1;
  }
  if (config_.predict_floor) {
    num_floors_ = static_cast<std::size_t>(*std::max_element(flr.begin(), flr.end())) + 1;
  }

  quantizer_.fit(pos, config_.quantize);
  layout_ = quantizer_.layout(num_buildings_, num_floors_);

  // Inputs and multi-hot targets.
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(train),
                                             config_.representation);
  const linalg::Mat y = quantizer_.build_targets(
      layout_, pos, config_.predict_building ? bld : std::vector<int>{},
      config_.predict_floor ? flr : std::vector<int>{});

  build_network();

  nn::Adam opt(config_.learning_rate);
  const nn::BceWithLogitsLoss loss(config_.positive_weight);
  nn::TrainConfig tc;
  tc.epochs = config_.epochs;
  tc.batch_size = config_.batch_size;
  tc.lr_decay = config_.lr_decay;
  tc.patience = val != nullptr ? config_.patience : 0;
  tc.shuffle_seed = config_.seed ^ 0xD1CEULL;
  nn::Trainer trainer(opt, loss, tc);

  nn::TrainResult result;
  if (val != nullptr && val->size() >= 2) {
    std::vector<geo::Point2> vpos;
    std::vector<int> vb, vf;
    unpack(*val, vpos, vb, vf);
    const linalg::Mat xv = data::normalize_rssi(data::wifi_feature_matrix(*val),
                                                config_.representation);
    const linalg::Mat yv = quantizer_.build_targets(
        layout_, vpos, config_.predict_building ? vb : std::vector<int>{},
        config_.predict_floor ? vf : std::vector<int>{});
    result = trainer.fit(net_, x, y, &xv, &yv);
  } else {
    result = trainer.fit(net_, x, y);
  }
  fitted_ = true;
  return result;
}

void NobleWifiModel::build_network() {
  // §IV-A network: two hidden tanh layers of 128 with batch norm.
  Rng rng(config_.seed);
  net_ = nn::Sequential();
  net_.emplace<nn::Dense>(input_dim_, config_.hidden_units, rng);
  net_.emplace<nn::BatchNorm1d>(config_.hidden_units);
  net_.emplace<nn::Tanh>();
  net_.emplace<nn::Dense>(config_.hidden_units, config_.hidden_units, rng);
  net_.emplace<nn::BatchNorm1d>(config_.hidden_units);
  net_.emplace<nn::Tanh>();
  net_.emplace<nn::Dense>(config_.hidden_units, layout_.total(), rng);
}

void NobleWifiModel::restore(const SpaceQuantizer& quantizer, std::size_t input_dim,
                             std::size_t num_buildings, std::size_t num_floors) {
  NOBLE_EXPECTS(quantizer.fitted());
  NOBLE_EXPECTS(input_dim > 0);
  quantizer_ = quantizer;
  input_dim_ = input_dim;
  num_buildings_ = num_buildings;
  num_floors_ = num_floors;
  layout_ = quantizer_.layout(num_buildings_, num_floors_);
  build_network();
  fitted_ = true;
}

std::vector<WifiPrediction> NobleWifiModel::predict(
    const data::WifiDataset& test) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(test.num_aps == input_dim_);
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(test),
                                             config_.representation);
  const linalg::Mat logits = net_.predict(x);
  const bool hierarchical = config_.hierarchical_decode && layout_.num_coarse > 0;
  std::vector<WifiPrediction> out;
  out.reserve(test.size());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const DecodedPrediction d = hierarchical
                                    ? quantizer_.decode_hierarchical(layout_, logits.row(i))
                                    : quantizer_.decode(layout_, logits.row(i));
    out.push_back({d.building, d.floor, d.fine_class, d.position});
  }
  return out;
}

std::size_t NobleWifiModel::macs_per_inference() const {
  return net_.macs_per_inference(input_dim_);
}

std::size_t NobleWifiModel::parameter_bytes() const {
  return net_.parameter_count() * sizeof(float);
}

}  // namespace noble::core
