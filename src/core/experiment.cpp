#include "core/experiment.h"

#include "common/config.h"
#include "sim/imu_dataset.h"
#include "sim/wifi_dataset.h"

namespace noble::core {

namespace {

WifiExperiment build_wifi_experiment(geo::IndoorWorld world,
                                     const WifiExperimentConfig& config) {
  WifiExperiment exp;
  exp.world = std::move(world);
  exp.wifi = std::make_unique<sim::WifiWorld>(exp.world, config.radio, config.seed);

  Rng rng(config.seed ^ 0xF00DULL);
  sim::CollectionConfig cc;
  cc.max_samples = scaled(config.total_samples);
  data::WifiDataset all = sim::collect_wifi_dataset(exp.world, *exp.wifi, cc, rng);

  Rng split_rng(config.seed ^ 0x5417ULL);
  exp.split = data::split_wifi(all, config.val_frac, config.test_frac, split_rng);
  return exp;
}

}  // namespace

WifiExperiment make_uji_experiment(const WifiExperimentConfig& config) {
  return build_wifi_experiment(geo::make_uji_like_campus(), config);
}

WifiExperiment make_ipin_experiment(WifiExperimentConfig config) {
  // Single small building: fewer samples and a denser AP deployment suffice.
  if (config.total_samples == WifiExperimentConfig{}.total_samples) {
    config.total_samples = 3000;
  }
  config.radio.aps_per_floor = std::max<std::size_t>(config.radio.aps_per_floor, 12);
  return build_wifi_experiment(geo::make_ipin_like_building(), config);
}

ImuExperiment make_imu_experiment(const ImuExperimentConfig& config) {
  ImuExperiment exp;
  exp.world = geo::make_outdoor_track();

  Rng rng(config.seed ^ 0x1517ULL);
  std::vector<sim::ImuRecording> recordings;
  const double per_walk = config.total_walk_time_s / static_cast<double>(config.num_walks);
  for (std::size_t w = 0; w < config.num_walks; ++w) {
    Rng walk_rng = rng.split(w + 1);
    recordings.push_back(sim::simulate_walk(exp.world, config.imu, per_walk, walk_rng));
  }

  sim::PathConfig pc;
  pc.readings_per_segment = static_cast<std::size_t>(
      env_int("NOBLE_IMU_READINGS", static_cast<long>(config.readings_per_segment)));
  pc.max_segments = config.max_segments;
  pc.num_paths = scaled(config.num_paths);
  Rng path_rng(config.seed ^ 0x9A7BULL);
  data::ImuDataset all = sim::build_imu_paths(recordings, pc, path_rng);

  Rng split_rng(config.seed ^ 0x3C1DULL);
  exp.split = data::split_imu(all, config.val_frac, config.test_frac, split_rng);
  return exp;
}

}  // namespace noble::core
