#include "core/noble_imu.h"

#include <cmath>

#include "common/check.h"
#include "linalg/ops.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/rbf_output.h"

namespace noble::core {

NobleImuTracker::NobleImuTracker(NobleImuConfig config) : config_(std::move(config)) {
  NOBLE_EXPECTS(config_.projection_dim >= 1);
  NOBLE_EXPECTS(config_.displacement_weight >= 0.0);
  NOBLE_EXPECTS(config_.segment_supervision_weight >= 0.0);
  NOBLE_EXPECTS(config_.displacement_scale > 0.0);
}

linalg::Mat NobleImuTracker::scaled_features(const data::ImuDataset& ds) const {
  linalg::Mat x(ds.size(), ds.feature_dim());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& p = ds.paths[i];
    float* row = x.row(i);
    const std::size_t used = p.num_segments * segment_dim_;
    for (std::size_t j = 0; j < used; ++j) {
      const std::size_t ch = j % 6;
      row[j] = static_cast<float>((p.features[j] - channel_mean_[ch]) *
                                  channel_inv_std_[ch]);
    }
    // Padded region stays exactly zero.
  }
  return x;
}

namespace {

/// Masked sum over segments: V(i) = sum_{s < num_segments(i)} seg(i, s).
/// `mask` is (n x segments*2) with 1s on real segments.
linalg::Mat masked_segment_sum(const linalg::Mat& seg, const linalg::Mat& mask) {
  NOBLE_EXPECTS(seg.rows() == mask.rows() && seg.cols() == mask.cols());
  linalg::Mat v(seg.rows(), 2);
  for (std::size_t i = 0; i < seg.rows(); ++i) {
    const float* srow = seg.row(i);
    const float* mrow = mask.row(i);
    double sx = 0.0, sy = 0.0;
    for (std::size_t j = 0; j < seg.cols(); j += 2) {
      sx += static_cast<double>(srow[j]) * mrow[j];
      sy += static_cast<double>(srow[j + 1]) * mrow[j + 1];
    }
    v(i, 0) = static_cast<float>(sx);
    v(i, 1) = static_cast<float>(sy);
  }
  return v;
}

/// Builds the (n x segments*2) validity mask of a dataset.
linalg::Mat build_segment_mask(const data::ImuDataset& ds) {
  linalg::Mat mask(ds.size(), ds.max_segments * 2);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    float* row = mask.row(i);
    for (std::size_t s = 0; s < ds.paths[i].num_segments; ++s) {
      row[s * 2] = 1.0f;
      row[s * 2 + 1] = 1.0f;
    }
  }
  return mask;
}

}  // namespace

ImuTrainResult NobleImuTracker::fit(const data::ImuDataset& train) {
  NOBLE_EXPECTS(train.size() >= 4);
  feature_dim_ = train.feature_dim();
  max_segments_ = train.max_segments;
  segment_dim_ = train.segment_dim;

  // Quantize on both start and end positions so start one-hot encoding and
  // end classes share one codebook.
  std::vector<geo::Point2> all_pos;
  all_pos.reserve(train.size() * 2);
  for (const auto& p : train.paths) {
    all_pos.push_back(p.start);
    all_pos.push_back(p.end);
  }
  quantizer_.fit(all_pos, config_.quantize);
  layout_ = quantizer_.layout(/*num_buildings=*/0, /*num_floors=*/0);

  // Per-channel statistics over real (non-padded) readings.
  double sum[6] = {0}, sq[6] = {0};
  std::size_t count = 0;
  for (const auto& p : train.paths) {
    const std::size_t used = p.num_segments * segment_dim_;
    for (std::size_t j = 0; j < used; ++j) {
      const std::size_t ch = j % 6;
      sum[ch] += p.features[j];
      sq[ch] += static_cast<double>(p.features[j]) * p.features[j];
    }
    count += p.num_segments * (segment_dim_ / 6);
  }
  NOBLE_CHECK(count > 0);
  for (int ch = 0; ch < 6; ++ch) {
    channel_mean_[ch] = sum[ch] / static_cast<double>(count);
    const double var =
        sq[ch] / static_cast<double>(count) - channel_mean_[ch] * channel_mean_[ch];
    channel_inv_std_[ch] = var > 1e-12 ? 1.0 / std::sqrt(var) : 1.0;
  }

  build_networks();

  // --- Training data --------------------------------------------------------
  const float inv_scale = static_cast<float>(1.0 / config_.displacement_scale);
  const linalg::Mat x = scaled_features(train);
  const linalg::Mat seg_mask = build_segment_mask(train);
  std::vector<geo::Point2> ends;
  std::vector<int> start_classes;
  linalg::Mat disp_true(train.size(), 2);
  linalg::Mat seg_true(train.size(), max_segments_ * 2);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto& p = train.paths[i];
    ends.push_back(p.end);
    start_classes.push_back(quantizer_.fine_class_of(p.start));
    disp_true(i, 0) = static_cast<float>(p.end.x - p.start.x) * inv_scale;
    disp_true(i, 1) = static_cast<float>(p.end.y - p.start.y) * inv_scale;
    geo::Point2 prev = p.start;
    for (std::size_t s = 0; s < p.num_segments && s < p.segment_endpoints.size(); ++s) {
      const geo::Point2 d = p.segment_endpoints[s] - prev;
      prev = p.segment_endpoints[s];
      seg_true(i, s * 2) = static_cast<float>(d.x) * inv_scale;
      seg_true(i, s * 2 + 1) = static_cast<float>(d.y) * inv_scale;
    }
  }
  const linalg::Mat targets = quantizer_.build_targets(layout_, ends, {}, {});

  // --- Joint minibatch loop --------------------------------------------------
  nn::Adam opt(config_.learning_rate);
  const nn::BceWithLogitsLoss class_loss(config_.positive_weight);
  const nn::MseLoss disp_loss;
  Rng shuffle_rng(config_.seed ^ 0x51DEULL);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  std::vector<linalg::Mat*> all_params, all_grads;
  for (nn::Sequential* net : {&projnet_, &seghead_, &locnet_}) {
    for (auto* p : net->params()) all_params.push_back(p);
    for (auto* g : net->grads()) all_grads.push_back(g);
  }

  ImuTrainResult result;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double cls_sum = 0.0, disp_sum = 0.0, seg_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t startb = 0; startb < order.size(); startb += config_.batch_size) {
      const std::size_t endb = std::min(order.size(), startb + config_.batch_size);
      if (endb - startb < 2) break;
      std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(startb),
                                   order.begin() + static_cast<std::ptrdiff_t>(endb));
      const linalg::Mat xb = linalg::take_rows(x, idx);
      const linalg::Mat tb = linalg::take_rows(targets, idx);
      const linalg::Mat db = linalg::take_rows(disp_true, idx);
      const linalg::Mat sb = linalg::take_rows(seg_true, idx);
      const linalg::Mat mb = linalg::take_rows(seg_mask, idx);
      std::vector<int> sc(idx.size());
      for (std::size_t i = 0; i < idx.size(); ++i) sc[i] = start_classes[idx[i]];

      // Forward: projection -> per-segment displacements -> masked sum ->
      // location classifier.
      const linalg::Mat& proj = projnet_.forward(xb, /*training=*/true);
      const linalg::Mat& seg_pred = seghead_.forward(proj, /*training=*/true);
      const linalg::Mat v = masked_segment_sum(seg_pred, mb);
      const linalg::Mat loc_in = location_inputs(v, sc);
      const linalg::Mat& logits = locnet_.forward(loc_in, /*training=*/true);

      // Losses.
      linalg::Mat dlogits, dv_mse, dseg_mse;
      cls_sum += class_loss.compute(logits, tb, dlogits);
      disp_sum += disp_loss.compute(v, db, dv_mse);
      linalg::Mat seg_pred_masked;
      linalg::hadamard(seg_pred, mb, seg_pred_masked);
      seg_sum += disp_loss.compute(seg_pred_masked, sb, dseg_mse);
      ++batches;

      for (nn::Sequential* net : {&projnet_, &seghead_, &locnet_}) net->zero_grads();

      // Backward. dV = location-net input slice + path-displacement MSE.
      linalg::Mat dloc_in;
      locnet_.backward(dlogits, dloc_in);
      const auto alpha = static_cast<float>(config_.displacement_weight);
      const auto beta = static_cast<float>(config_.segment_supervision_weight);
      const auto chain = static_cast<float>(config_.location_input_scale *
                                            config_.displacement_scale);
      linalg::Mat dseg(seg_pred.rows(), seg_pred.cols());
      for (std::size_t i = 0; i < seg_pred.rows(); ++i) {
        // Chain rule through the location-input embedding (x cs x ds).
        const float dvx = dloc_in(i, 0) * chain + alpha * dv_mse(i, 0);
        const float dvy = dloc_in(i, 1) * chain + alpha * dv_mse(i, 1);
        const float* mrow = mb.row(i);
        const float* grow = dseg_mse.row(i);
        float* drow = dseg.row(i);
        for (std::size_t j = 0; j < seg_pred.cols(); j += 2) {
          // Sum routes dV to every real segment; per-segment MSE adds its
          // own masked term.
          drow[j] = mrow[j] * (dvx + beta * grow[j]);
          drow[j + 1] = mrow[j + 1] * (dvy + beta * grow[j + 1]);
        }
      }
      linalg::Mat dproj, dx_unused;
      seghead_.backward(dseg, dproj);
      projnet_.backward(dproj, dx_unused);
      opt.step(all_params, all_grads);
    }
    result.class_loss_history.push_back(cls_sum / static_cast<double>(batches));
    result.displacement_loss_history.push_back(disp_sum / static_cast<double>(batches));
    result.segment_loss_history.push_back(seg_sum / static_cast<double>(batches));
    ++result.epochs_run;
    opt.set_learning_rate(opt.learning_rate() * config_.lr_decay);
  }
  fitted_ = true;
  return result;
}

void NobleImuTracker::build_networks() {
  // --- Networks (Fig. 5a) --------------------------------------------------
  // The displacement module is realized as a weight-shared per-segment
  // displacement estimator (seghead_) whose outputs are summed over the real
  // segments of a path: projection -> per-segment displacement -> sum. The
  // per-segment estimates are supervised from the reference coordinates
  // (§V-A makes them available); the summed vector feeds the location net.
  Rng rng(config_.seed);
  projnet_ = nn::Sequential();
  projnet_.emplace<nn::TimeDistributedDense>(max_segments_, segment_dim_,
                                             config_.projection_dim, rng);
  projnet_.emplace<nn::Tanh>();

  seghead_ = nn::Sequential();
  seghead_.emplace<nn::TimeDistributedDense>(max_segments_, config_.projection_dim, 2,
                                             rng);

  // Location network: the one-hot start class is embedded through the same
  // class -> cell-center lookup used at inference (§IV-A), added to the
  // displacement vector, and classified by a distance-based output layer
  // (§III-C's Euclidean form of the classification head). Prototypes are
  // initialized at the quantizer cell centers — the geometric solution —
  // and refined jointly by training.
  const std::size_t num_classes = layout_.num_fine;
  locnet_ = nn::Sequential();
  auto& rbf = locnet_.emplace<nn::RbfOutput>(2, num_classes, rng, 0.01f);
  const auto cs = static_cast<float>(config_.location_input_scale);
  for (std::size_t c = 0; c < num_classes; ++c) {
    const geo::Point2 center = quantizer_.fine().center(static_cast<int>(c));
    rbf.prototypes()(c, 0) += static_cast<float>(center.x) * cs;
    rbf.prototypes()(c, 1) += static_cast<float>(center.y) * cs;
  }
}

void NobleImuTracker::restore(const SpaceQuantizer& quantizer,
                              std::size_t max_segments, std::size_t segment_dim,
                              const std::array<double, 6>& mean,
                              const std::array<double, 6>& inv_std) {
  NOBLE_EXPECTS(quantizer.fitted());
  NOBLE_EXPECTS(max_segments > 0 && segment_dim > 0);
  NOBLE_EXPECTS(segment_dim % 6 == 0);  // six IMU channels per reading
  quantizer_ = quantizer;
  layout_ = quantizer_.layout(/*num_buildings=*/0, /*num_floors=*/0);
  max_segments_ = max_segments;
  segment_dim_ = segment_dim;
  feature_dim_ = max_segments * segment_dim;
  for (int ch = 0; ch < 6; ++ch) {
    channel_mean_[ch] = mean[static_cast<std::size_t>(ch)];
    channel_inv_std_[ch] = inv_std[static_cast<std::size_t>(ch)];
  }
  build_networks();
  fitted_ = true;
}

std::array<double, 6> NobleImuTracker::channel_mean() const {
  std::array<double, 6> out;
  for (int ch = 0; ch < 6; ++ch) out[static_cast<std::size_t>(ch)] = channel_mean_[ch];
  return out;
}

std::array<double, 6> NobleImuTracker::channel_inv_std() const {
  std::array<double, 6> out;
  for (int ch = 0; ch < 6; ++ch)
    out[static_cast<std::size_t>(ch)] = channel_inv_std_[ch];
  return out;
}

linalg::Mat NobleImuTracker::location_inputs(const linalg::Mat& displacement,
                                             const std::vector<int>& start_classes) const {
  // Embedding of (start class, displacement): the start class decodes to its
  // cell center (meters), the displacement is rescaled to meters, and the
  // sum — the estimated end position — enters the distance-based location
  // head in scaled coordinates.
  const auto cs = static_cast<float>(config_.location_input_scale);
  const auto ds = static_cast<float>(config_.displacement_scale);
  linalg::Mat in(displacement.rows(), 2);
  for (std::size_t i = 0; i < displacement.rows(); ++i) {
    const int sc = start_classes[i];
    NOBLE_EXPECTS(sc >= 0 && static_cast<std::size_t>(sc) < layout_.num_fine);
    const geo::Point2 start = quantizer_.fine().center(sc);
    in(i, 0) = (static_cast<float>(start.x) + displacement(i, 0) * ds) * cs;
    in(i, 1) = (static_cast<float>(start.y) + displacement(i, 1) * ds) * cs;
  }
  return in;
}

std::vector<ImuPrediction> NobleImuTracker::predict(const data::ImuDataset& test) const {
  NOBLE_EXPECTS(fitted_);
  NOBLE_EXPECTS(test.segment_dim == segment_dim_ && test.max_segments == max_segments_);
  const linalg::Mat x = scaled_features(test);
  const linalg::Mat mask = build_segment_mask(test);
  std::vector<int> start_classes(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    start_classes[i] = quantizer_.fine_class_of(test.paths[i].start);
  }
  const linalg::Mat proj = projnet_.predict(x);
  const linalg::Mat seg = seghead_.predict(proj);
  const linalg::Mat v = masked_segment_sum(seg, mask);
  const linalg::Mat logits = locnet_.predict(location_inputs(v, start_classes));

  std::vector<ImuPrediction> out;
  out.reserve(test.size());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const DecodedPrediction d = quantizer_.decode(layout_, logits.row(i));
    out.push_back({d.fine_class, d.position,
                   {static_cast<double>(v(i, 0)) * config_.displacement_scale,
                    static_cast<double>(v(i, 1)) * config_.displacement_scale}});
  }
  return out;
}

std::vector<std::vector<geo::Point2>> NobleImuTracker::predict_segment_displacements(
    const data::ImuDataset& test) const {
  NOBLE_EXPECTS(fitted_);
  const linalg::Mat x = scaled_features(test);
  const linalg::Mat proj = projnet_.predict(x);
  const linalg::Mat seg = seghead_.predict(proj);
  std::vector<std::vector<geo::Point2>> out(test.size());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const std::size_t n = test.paths[i].num_segments;
    out[i].reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      out[i].push_back({static_cast<double>(seg(i, s * 2)) * config_.displacement_scale,
                        static_cast<double>(seg(i, s * 2 + 1)) *
                            config_.displacement_scale});
    }
  }
  return out;
}

std::size_t NobleImuTracker::macs_per_inference() const {
  return projnet_.macs_per_inference(feature_dim_) +
         seghead_.macs_per_inference(max_segments_ * config_.projection_dim) +
         locnet_.macs_per_inference(2 + layout_.num_fine);
}

std::size_t NobleImuTracker::parameter_bytes() const {
  return (projnet_.parameter_count() + seghead_.parameter_count() +
          locnet_.parameter_count()) *
         sizeof(float);
}

}  // namespace noble::core
