// NObLe for IMU device tracking (§V).
//
// Three modules per Fig. 5(a):
//  * projection — a weight-shared TimeDistributedDense that maps every
//    inter-reference IMU window g_i to a low-dimensional embedding;
//  * displacement network — a weight-shared per-segment displacement
//    estimator over the projections whose outputs are summed across the real
//    segments of the path, yielding the 2-D path displacement vector
//    (environment-agnostic and reusable, as §V-B notes);
//  * location network — takes the displacement vector and the start
//    neighborhood class (embedded through the class -> cell-center lookup)
//    and emits end-class logits through a distance-based output layer, the
//    explicit form of §III-C's ||w_c - z||^2 classification geometry, with
//    prototypes initialized at the quantizer cell centers.
// Training is joint: BCE on the end class, an auxiliary MSE on the path
// displacement vector, and (optionally) a weight-shared per-segment
// displacement head on the projection output. All displacement labels come
// from the reference GPS coordinates (§V-A).
#ifndef NOBLE_CORE_NOBLE_IMU_H_
#define NOBLE_CORE_NOBLE_IMU_H_

#include <array>
#include <cstdint>

#include "core/quantize.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "nn/network.h"

namespace noble::core {

/// Hyperparameters of the IMU tracker.
struct NobleImuConfig {
  /// Output-space quantization at tau = 0.4 m (§V-B).
  QuantizeConfig quantize{.tau = 0.4,
                          .coarse_l = 4.0,
                          .use_coarse = false,
                          .adjacency_labels = true,
                          .adjacency_ring = 1,
                          .adjacency_value = 0.5f};
  /// Per-segment projection embedding size.
  std::size_t projection_dim = 12;
  double learning_rate = 2e-3;
  double lr_decay = 0.99;
  std::size_t epochs = 60;
  std::size_t batch_size = 32;
  /// Weight of the auxiliary path-displacement MSE term.
  double displacement_weight = 1.0;
  /// Weight of the per-segment displacement supervision on the projection
  /// output (0 disables the head). Ablated in bench/ablation_labels.
  double segment_supervision_weight = 1.0;
  /// Displacement targets are divided by this scale (meters) so the
  /// networks regress O(1) values; predictions are rescaled on output.
  double displacement_scale = 25.0;
  /// Meters-to-embedding scale of the location network: the estimated end
  /// position (start-class center + displacement) enters the distance-based
  /// head multiplied by this factor, which acts as the softmax/sigmoid
  /// temperature of the -1/2||h - w_c||^2 logits (§III-C).
  double location_input_scale = 0.2;
  double positive_weight = 4.0;
  std::uint64_t seed = 47;
};

/// One decoded tracking prediction.
struct ImuPrediction {
  int fine_class = 0;
  geo::Point2 position;      ///< decoded end position (cell center).
  geo::Point2 displacement;  ///< displacement-network output (diagnostic).
};

/// Per-epoch losses of the joint training.
struct ImuTrainResult {
  std::vector<double> class_loss_history;
  std::vector<double> displacement_loss_history;
  std::vector<double> segment_loss_history;
  std::size_t epochs_run = 0;
};

/// Trainable NObLe IMU tracker.
class NobleImuTracker {
 public:
  explicit NobleImuTracker(NobleImuConfig config = {});

  /// Fits the quantizer and all modules on training paths.
  ImuTrainResult fit(const data::ImuDataset& train);

  /// Predicts the ending position of each test path. Const: inference runs
  /// through the networks' mutation-free path, so a fitted tracker is safe
  /// to share across threads.
  std::vector<ImuPrediction> predict(const data::ImuDataset& test) const;

  /// Per-segment displacement estimates from the shared projection +
  /// segment head (meters; one Point2 per real segment of each path).
  /// The §V-B "plug into other environments" reuse path.
  std::vector<std::vector<geo::Point2>> predict_segment_displacements(
      const data::ImuDataset& test) const;

  /// Rebuilds a fitted tracker from deployable state — the serve artifact
  /// load path. Installs the quantizer, layout dimensions and per-channel
  /// normalization, reconstructs the three modules (freshly initialized),
  /// and marks the tracker fitted; the caller then overwrites the weights.
  void restore(const SpaceQuantizer& quantizer, std::size_t max_segments,
               std::size_t segment_dim, const std::array<double, 6>& mean,
               const std::array<double, 6>& inv_std);

  bool fitted() const { return fitted_; }
  const NobleImuConfig& config() const { return config_; }
  const SpaceQuantizer& quantizer() const { return quantizer_; }
  /// Number of neighborhood classes (output and start-encoding size).
  std::size_t num_classes() const { return quantizer_.num_fine_classes(); }

  /// Fixed feature-layout dimensions the tracker was fitted on.
  std::size_t feature_dim() const { return feature_dim_; }
  std::size_t max_segments() const { return max_segments_; }
  std::size_t segment_dim() const { return segment_dim_; }

  /// Per-channel normalization fitted on train data (artifact export; the
  /// serve localizer standardizes streamed segments with these).
  std::array<double, 6> channel_mean() const;
  std::array<double, 6> channel_inv_std() const;

  /// The three fitted modules (artifact export / weight install).
  nn::Sequential& projection_network() { return projnet_; }
  const nn::Sequential& projection_network() const { return projnet_; }
  nn::Sequential& segment_head() { return seghead_; }
  const nn::Sequential& segment_head() const { return seghead_; }
  nn::Sequential& location_network() { return locnet_; }
  const nn::Sequential& location_network() const { return locnet_; }

  /// MACs of one inference (projection + displacement + location nets).
  std::size_t macs_per_inference() const;
  /// Total parameter bytes across all modules.
  std::size_t parameter_bytes() const;

  /// Location-head inputs from a displacement batch (scaled units) and
  /// per-sample start classes — exposed for the serve streaming session,
  /// which must reproduce batch inference exactly.
  linalg::Mat location_inputs(const linalg::Mat& displacement,
                              const std::vector<int>& start_classes) const;

 private:
  /// Builds the three Fig. 5(a) modules for the current dimensions.
  void build_networks();

  /// Per-channel standardization that preserves zero padding: only the
  /// entries of real (non-padded) segments are scaled.
  linalg::Mat scaled_features(const data::ImuDataset& ds) const;

  NobleImuConfig config_;
  SpaceQuantizer quantizer_;
  LabelLayout layout_;  // classes only (no building/floor blocks)
  nn::Sequential projnet_;  // shared projection module
  nn::Sequential seghead_;  // per-segment displacement estimator (summed -> V)
  nn::Sequential locnet_;   // location module
  double channel_mean_[6] = {0, 0, 0, 0, 0, 0};
  double channel_inv_std_[6] = {1, 1, 1, 1, 1, 1};
  std::size_t feature_dim_ = 0;
  std::size_t max_segments_ = 0;
  std::size_t segment_dim_ = 0;
  bool fitted_ = false;
};

}  // namespace noble::core

#endif  // NOBLE_CORE_NOBLE_IMU_H_
