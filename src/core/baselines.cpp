#include "core/baselines.h"

#include <cmath>
#include <map>
#include <numbers>

#include "common/check.h"
#include "linalg/ops.h"
#include "manifold/isomap.h"
#include "manifold/knn.h"
#include "manifold/lle.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace noble::core {

namespace {

/// Two-hidden-layer regression trunk ending in a 2-unit linear output —
/// same capacity as the NObLe trunk (§IV-B: "same network size").
nn::Sequential make_regression_net(std::size_t input_dim, std::size_t hidden, Rng& rng) {
  nn::Sequential net;
  net.emplace<nn::Dense>(input_dim, hidden, rng);
  net.emplace<nn::BatchNorm1d>(hidden);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(hidden, hidden, rng);
  net.emplace<nn::BatchNorm1d>(hidden);
  net.emplace<nn::Tanh>();
  net.emplace<nn::Dense>(hidden, 2, rng);
  return net;
}

nn::TrainResult train_regression(nn::Sequential& net, const RegressionConfig& cfg,
                                 const linalg::Mat& x, const linalg::Mat& y,
                                 const linalg::Mat* xv, const linalg::Mat* yv) {
  nn::Adam opt(cfg.learning_rate);
  const nn::MseLoss loss;
  nn::TrainConfig tc;
  tc.epochs = cfg.epochs;
  tc.batch_size = cfg.batch_size;
  tc.lr_decay = cfg.lr_decay;
  tc.patience = xv != nullptr ? cfg.patience : 0;
  tc.shuffle_seed = cfg.seed ^ 0xABCDULL;
  nn::Trainer trainer(opt, loss, tc);
  return trainer.fit(net, x, y, xv, yv);
}

std::vector<geo::Point2> rows_to_points(const linalg::Mat& m) {
  std::vector<geo::Point2> out;
  out.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    out.push_back({static_cast<double>(m(i, 0)), static_cast<double>(m(i, 1))});
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// DeepRegressionWifi
// ---------------------------------------------------------------------------

DeepRegressionWifi::DeepRegressionWifi(RegressionConfig config)
    : config_(std::move(config)) {}

nn::TrainResult DeepRegressionWifi::fit(const data::WifiDataset& train,
                                        const data::WifiDataset* val) {
  NOBLE_EXPECTS(train.size() >= 4);
  input_dim_ = train.num_aps;
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(train),
                                             config_.representation);
  const linalg::Mat y_raw = data::wifi_position_matrix(train);
  target_scaler_.fit(y_raw);
  const linalg::Mat y = target_scaler_.transform(y_raw);

  Rng rng(config_.seed);
  net_ = make_regression_net(input_dim_, config_.hidden_units, rng);

  nn::TrainResult res;
  if (val != nullptr && val->size() >= 2) {
    const linalg::Mat xv = data::normalize_rssi(data::wifi_feature_matrix(*val),
                                                config_.representation);
    const linalg::Mat yv = target_scaler_.transform(data::wifi_position_matrix(*val));
    res = train_regression(net_, config_, x, y, &xv, &yv);
  } else {
    res = train_regression(net_, config_, x, y, nullptr, nullptr);
  }
  fitted_ = true;
  return res;
}

std::vector<geo::Point2> DeepRegressionWifi::predict(const data::WifiDataset& test) {
  NOBLE_EXPECTS(fitted_);
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(test),
                                             config_.representation);
  return rows_to_points(target_scaler_.inverse_transform(net_.predict(x)));
}

// ---------------------------------------------------------------------------
// RegressionProjectionWifi
// ---------------------------------------------------------------------------

RegressionProjectionWifi::RegressionProjectionWifi(RegressionConfig config,
                                                   const geo::FloorPlan& plan)
    : inner_(std::move(config)), plan_(&plan) {}

nn::TrainResult RegressionProjectionWifi::fit(const data::WifiDataset& train,
                                              const data::WifiDataset* val) {
  return inner_.fit(train, val);
}

std::vector<geo::Point2> RegressionProjectionWifi::predict(const data::WifiDataset& test) {
  auto points = inner_.predict(test);
  for (auto& p : points) p = plan_->project_to_accessible(p);
  return points;
}

// ---------------------------------------------------------------------------
// ManifoldRegressionWifi
// ---------------------------------------------------------------------------

ManifoldRegressionWifi::ManifoldRegressionWifi(ManifoldRegressionConfig config)
    : config_(std::move(config)) {
  NOBLE_EXPECTS(config_.embedding_dim >= 1);
}

linalg::Mat ManifoldRegressionWifi::embed(const linalg::Mat& features) const {
  return embedder_->transform(features);
}

nn::TrainResult ManifoldRegressionWifi::fit(const data::WifiDataset& train,
                                            const data::WifiDataset* val) {
  NOBLE_EXPECTS(train.size() > config_.embedding_dim + 2);
  const linalg::Mat x_full = data::normalize_rssi(data::wifi_feature_matrix(train),
                                                  config_.regression.representation);

  // Fit the embedder on a subsample (quadratic-cost algorithms), then embed
  // every sample through the fitted model's out-of-sample extension.
  Rng rng(config_.seed);
  const std::size_t fit_n = std::min(config_.fit_subsample, x_full.rows());
  const auto idx = rng.sample_without_replacement(x_full.rows(), fit_n);
  const linalg::Mat x_fit = linalg::take_rows(x_full, idx);

  if (config_.method == ManifoldMethod::kIsomap) {
    embedder_ = std::make_unique<manifold::Isomap>(config_.embedding_dim, config_.k,
                                                   config_.seed);
  } else {
    embedder_ = std::make_unique<manifold::Lle>(config_.embedding_dim, config_.k, 1e-3,
                                                config_.seed);
  }
  embedder_->fit(x_fit);

  const linalg::Mat e_raw = embed(x_full);
  embed_scaler_.fit(e_raw);
  const linalg::Mat e = embed_scaler_.transform(e_raw);

  const linalg::Mat y_raw = data::wifi_position_matrix(train);
  target_scaler_.fit(y_raw);
  const linalg::Mat y = target_scaler_.transform(y_raw);

  Rng net_rng(config_.seed ^ 0xBEEFULL);
  net_ = make_regression_net(config_.embedding_dim, config_.regression.hidden_units,
                             net_rng);

  nn::TrainResult res;
  if (val != nullptr && val->size() >= 2) {
    const linalg::Mat xv = data::normalize_rssi(data::wifi_feature_matrix(*val),
                                                config_.regression.representation);
    const linalg::Mat ev = embed_scaler_.transform(embed(xv));
    const linalg::Mat yv = target_scaler_.transform(data::wifi_position_matrix(*val));
    res = train_regression(net_, config_.regression, e, y, &ev, &yv);
  } else {
    res = train_regression(net_, config_.regression, e, y, nullptr, nullptr);
  }
  fitted_ = true;
  return res;
}

std::vector<geo::Point2> ManifoldRegressionWifi::predict(const data::WifiDataset& test) {
  NOBLE_EXPECTS(fitted_);
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(test),
                                             config_.regression.representation);
  const linalg::Mat e = embed_scaler_.transform(embed(x));
  return rows_to_points(target_scaler_.inverse_transform(net_.predict(e)));
}

// ---------------------------------------------------------------------------
// KnnFingerprintWifi
// ---------------------------------------------------------------------------

KnnFingerprintWifi::KnnFingerprintWifi(std::size_t k, data::RssiRepresentation rep)
    : k_(k), rep_(rep) {
  NOBLE_EXPECTS(k >= 1);
}

void KnnFingerprintWifi::fit(const data::WifiDataset& train) {
  NOBLE_EXPECTS(train.size() >= k_);
  train_features_ = data::normalize_rssi(data::wifi_feature_matrix(train), rep_);
  train_positions_.clear();
  train_buildings_.clear();
  train_floors_.clear();
  for (const auto& s : train.samples) {
    train_positions_.push_back(s.position);
    train_buildings_.push_back(s.building);
    train_floors_.push_back(s.floor);
  }
}

std::vector<geo::Point2> KnnFingerprintWifi::predict(const data::WifiDataset& test,
                                                     std::vector<int>* buildings,
                                                     std::vector<int>* floors) const {
  NOBLE_EXPECTS(!train_positions_.empty());
  const linalg::Mat x = data::normalize_rssi(data::wifi_feature_matrix(test), rep_);
  std::vector<geo::Point2> out;
  out.reserve(test.size());
  if (buildings != nullptr) buildings->clear();
  if (floors != nullptr) floors->clear();

  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto nbs = manifold::knn_query(train_features_, x.row(i), k_);
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    std::map<int, int> bvotes, fvotes;
    for (const auto& nb : nbs) {
      const double w = 1.0 / (nb.distance + 1e-6);
      wx += w * train_positions_[nb.index].x;
      wy += w * train_positions_[nb.index].y;
      wsum += w;
      ++bvotes[train_buildings_[nb.index]];
      ++fvotes[train_floors_[nb.index]];
    }
    out.push_back({wx / wsum, wy / wsum});
    auto majority = [](const std::map<int, int>& votes) {
      int best = -1, best_n = -1;
      for (const auto& [id, n] : votes) {
        if (n > best_n) {
          best_n = n;
          best = id;
        }
      }
      return best;
    };
    if (buildings != nullptr) buildings->push_back(majority(bvotes));
    if (floors != nullptr) floors->push_back(majority(fvotes));
  }
  return out;
}

// ---------------------------------------------------------------------------
// DeepRegressionImu
// ---------------------------------------------------------------------------

DeepRegressionImu::DeepRegressionImu(RegressionConfig config)
    : config_(std::move(config)) {}

linalg::Mat DeepRegressionImu::build_inputs(const data::ImuDataset& ds) const {
  // IMU features plus the known start coordinates.
  linalg::Mat x(ds.size(), ds.feature_dim() + 2);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto& p = ds.paths[i];
    float* row = x.row(i);
    std::copy(p.features.begin(), p.features.end(), row);
    row[ds.feature_dim()] = static_cast<float>(p.start.x);
    row[ds.feature_dim() + 1] = static_cast<float>(p.start.y);
  }
  return x;
}

nn::TrainResult DeepRegressionImu::fit(const data::ImuDataset& train,
                                       const data::ImuDataset* val) {
  NOBLE_EXPECTS(train.size() >= 4);
  const linalg::Mat x_raw = build_inputs(train);
  input_scaler_.fit(x_raw);
  const linalg::Mat x = input_scaler_.transform(x_raw);
  const linalg::Mat y_raw = data::imu_end_matrix(train);
  target_scaler_.fit(y_raw);
  const linalg::Mat y = target_scaler_.transform(y_raw);

  Rng rng(config_.seed);
  net_ = make_regression_net(x.cols(), config_.hidden_units, rng);

  nn::TrainResult res;
  if (val != nullptr && val->size() >= 2) {
    const linalg::Mat xv = input_scaler_.transform(build_inputs(*val));
    const linalg::Mat yv = target_scaler_.transform(data::imu_end_matrix(*val));
    res = train_regression(net_, config_, x, y, &xv, &yv);
  } else {
    res = train_regression(net_, config_, x, y, nullptr, nullptr);
  }
  fitted_ = true;
  return res;
}

std::vector<geo::Point2> DeepRegressionImu::predict(const data::ImuDataset& test) {
  NOBLE_EXPECTS(fitted_);
  const linalg::Mat x = input_scaler_.transform(build_inputs(test));
  return rows_to_points(target_scaler_.inverse_transform(net_.predict(x)));
}

// ---------------------------------------------------------------------------
// MapAssistedDeadReckoning
// ---------------------------------------------------------------------------

MapAssistedDeadReckoning::MapAssistedDeadReckoning(Config config,
                                                   const geo::PathGraph& walkways)
    : config_(config), walkways_(&walkways) {
  NOBLE_EXPECTS(config.k >= 1);
}

std::vector<float> MapAssistedDeadReckoning::coarse_features(const float* segment) const {
  const std::size_t readings = segment_dim_ / 6;
  std::vector<float> out(6, 0.0f);
  double sq[6] = {0};
  for (std::size_t r = 0; r < readings; ++r) {
    for (int c = 0; c < 6; ++c) {
      const double v = segment[r * 6 + static_cast<std::size_t>(c)];
      sq[c] += v * v;
    }
  }
  const double inv = 1.0 / static_cast<double>(readings);
  for (int c = 0; c < 6; ++c) {
    out[static_cast<std::size_t>(c)] = static_cast<float>(std::sqrt(sq[c] * inv));
  }
  return out;
}

void MapAssistedDeadReckoning::fit(const data::ImuDataset& train) {
  segment_dim_ = train.segment_dim;
  // Collect (energy descriptor, travel distance) pairs from every training
  // path; reference coordinates make per-segment distances available (§V-A).
  std::vector<std::vector<float>> feats;
  std::vector<double> dists;
  for (const auto& p : train.paths) {
    NOBLE_CHECK(p.segment_endpoints.size() == p.num_segments);
    geo::Point2 prev = p.start;
    for (std::size_t s = 0; s < p.num_segments; ++s) {
      feats.push_back(coarse_features(p.features.data() + s * segment_dim_));
      dists.push_back(geo::distance(p.segment_endpoints[s], prev));
      prev = p.segment_endpoints[s];
      if (feats.size() >= config_.max_bank) break;
    }
    if (feats.size() >= config_.max_bank) break;
  }
  NOBLE_CHECK(!feats.empty());
  bank_features_.resize(feats.size(), feats[0].size());
  bank_distances_ = std::move(dists);
  for (std::size_t i = 0; i < feats.size(); ++i) {
    std::copy(feats[i].begin(), feats[i].end(), bank_features_.row(i));
  }
}

std::vector<geo::Point2> MapAssistedDeadReckoning::predict(
    const data::ImuDataset& test) const {
  NOBLE_EXPECTS(bank_features_.rows() > 0);
  NOBLE_EXPECTS(test.segment_dim == segment_dim_);
  std::vector<geo::Point2> out;
  out.reserve(test.size());
  const std::size_t readings = segment_dim_ / 6;

  for (const auto& p : test.paths) {
    geo::Point2 pos = p.start;
    // Initial heading: the tracker knows its orientation at the start
    // (generous to the baseline; [8] tracks continuously from a known pose).
    double heading = 0.0;
    if (!p.segment_endpoints.empty()) {
      const geo::Point2 first = p.segment_endpoints.front() - p.start;
      if (first.norm() > 1e-9) heading = std::atan2(first.y, first.x);
    }
    const double seg_duration =
        p.num_segments > 0 ? p.duration_s / static_cast<double>(p.num_segments) : 0.0;
    const double dt = seg_duration / static_cast<double>(readings);

    for (std::size_t s = 0; s < p.num_segments; ++s) {
      const float* seg = p.features.data() + s * segment_dim_;
      // Travel distance via coarse-grained ML (uniform-weight kNN on
      // energy features).
      const auto coarse = coarse_features(seg);
      const auto nbs = manifold::knn_query(bank_features_, coarse.data(), config_.k);
      double dist = 0.0;
      for (const auto& nb : nbs) dist += bank_distances_[nb.index];
      dist /= static_cast<double>(nbs.size());

      // Heading by integrating the yaw gyro (channel 5) — PDR proper. The
      // segment's midpoint heading advances the position.
      double yaw = 0.0;
      for (std::size_t r = 0; r < readings; ++r) yaw += seg[r * 6 + 5] * dt;
      const double mid_heading = heading + 0.5 * yaw;
      heading += yaw;
      pos = pos + geo::Point2{dist * std::cos(mid_heading), dist * std::sin(mid_heading)};

      if (std::fabs(yaw) > config_.turn_threshold_rad) {
        // [8]'s heuristic: turns happen only at map turn points — snap the
        // estimate to the walkway network and re-anchor the heading to the
        // local walkway direction (sign chosen to match the current
        // heading), which is what bounds gyro drift between turns.
        pos = walkways_->snap_to_path(pos);
        const geo::Point2 dir = walkways_->nearest_edge_direction(pos);
        const double along = std::atan2(dir.y, dir.x);
        const double diff = std::remainder(heading - along, 2.0 * std::numbers::pi);
        heading = (std::fabs(diff) <= std::numbers::pi / 2.0)
                      ? along
                      : std::remainder(along + std::numbers::pi,
                                       2.0 * std::numbers::pi);
      }
    }
    out.push_back(walkways_->snap_to_path(pos));
  }
  return out;
}

}  // namespace noble::core
