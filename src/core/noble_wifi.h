// NObLe for Wi-Fi fingerprint localization (§IV).
//
// Architecture per §IV-A: a two-hidden-layer feed-forward network (128 units,
// hyperbolic tangent, batch normalization, Xavier init) whose output layer is
// the concatenated multi-label block [building | floor | fine class c |
// coarse class r], trained with binary cross-entropy on multi-hot targets.
// Inference decodes the fine class to its cell center.
#ifndef NOBLE_CORE_NOBLE_WIFI_H_
#define NOBLE_CORE_NOBLE_WIFI_H_

#include <cstdint>

#include "core/quantize.h"
#include "data/dataset.h"
#include "data/preprocess.h"
#include "nn/network.h"
#include "nn/trainer.h"

namespace noble::core {

/// Hyperparameters of the Wi-Fi NObLe model.
struct NobleWifiConfig {
  QuantizeConfig quantize;
  std::size_t hidden_units = 128;
  bool predict_building = true;
  bool predict_floor = true;
  /// Decode the fine class hierarchically through the coarse head
  /// (§III-B multi-granularity decode). Requires quantize.use_coarse.
  bool hierarchical_decode = false;
  double learning_rate = 2e-3;
  double lr_decay = 0.97;
  std::size_t epochs = 25;
  std::size_t batch_size = 64;
  std::size_t patience = 6;
  /// BCE positive-class weight (fine-grained quantization makes positives
  /// extremely sparse).
  double positive_weight = 6.0;
  data::RssiRepresentation representation = data::RssiRepresentation::kPowed;
  std::uint64_t seed = 42;
};

/// One decoded test-time prediction.
struct WifiPrediction {
  int building = -1;
  int floor = -1;
  int fine_class = 0;
  geo::Point2 position;
};

/// Trainable NObLe Wi-Fi localizer.
class NobleWifiModel {
 public:
  explicit NobleWifiModel(NobleWifiConfig config = {});

  /// Fits quantizers and network on the training set; optional validation
  /// set drives early stopping.
  nn::TrainResult fit(const data::WifiDataset& train,
                      const data::WifiDataset* val = nullptr);

  /// Predicts (building, floor, class, position) for every test sample.
  /// Const: inference runs through the network's mutation-free path, so a
  /// fitted model is safe to share across threads.
  std::vector<WifiPrediction> predict(const data::WifiDataset& test) const;

  /// Rebuilds a fitted model from deployable state — the serve artifact
  /// load path. Installs the quantizer and dimensions, reconstructs the
  /// network architecture (freshly initialized), and marks the model
  /// fitted; the caller then overwrites the weights (nn::decode_network).
  void restore(const SpaceQuantizer& quantizer, std::size_t input_dim,
               std::size_t num_buildings, std::size_t num_floors);

  bool fitted() const { return fitted_; }
  const NobleWifiConfig& config() const { return config_; }
  const SpaceQuantizer& quantizer() const { return quantizer_; }
  const LabelLayout& layout() const { return layout_; }
  nn::Sequential& network() { return net_; }
  const nn::Sequential& network() const { return net_; }

  /// Input dimension (AP count) the model was fitted on.
  std::size_t input_dim() const { return input_dim_; }
  std::size_t num_buildings() const { return num_buildings_; }
  std::size_t num_floors() const { return num_floors_; }

  /// Dense-layer MAC count of one inference (energy model input).
  std::size_t macs_per_inference() const;
  /// Total parameter bytes (energy model input).
  std::size_t parameter_bytes() const;

 private:
  /// Builds the §IV-A network for the current input_dim_/layout_.
  void build_network();

  NobleWifiConfig config_;
  SpaceQuantizer quantizer_;
  LabelLayout layout_;
  nn::Sequential net_;
  std::size_t input_dim_ = 0;
  std::size_t num_buildings_ = 0;
  std::size_t num_floors_ = 0;
  bool fitted_ = false;
};

}  // namespace noble::core

#endif  // NOBLE_CORE_NOBLE_WIFI_H_
