#include "serve/artifact.h"

#include <array>
#include <fstream>
#include <limits>
#include <unordered_set>
#include <utility>

#include "nn/serialize.h"

namespace noble::serve {

namespace {

using nn::ByteReader;
using nn::ByteWriter;
using nn::SectionReader;
using nn::SectionWriter;

// --- shared sub-codecs -------------------------------------------------------

void write_quantize_config(ByteWriter& w, const core::QuantizeConfig& q) {
  w.f64(q.tau);
  w.f64(q.coarse_l);
  w.u32(q.use_coarse ? 1 : 0);
  w.u32(q.adjacency_labels ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(q.adjacency_ring));
  w.f64(q.adjacency_value);
}

bool read_quantize_config(ByteReader& r, core::QuantizeConfig& q) {
  std::uint32_t use_coarse = 0, adjacency = 0, ring = 0;
  double adjacency_value = 0.0;
  if (!r.f64(q.tau) || !r.f64(q.coarse_l) || !r.u32(use_coarse) ||
      !r.u32(adjacency) || !r.u32(ring) || !r.f64(adjacency_value)) {
    return false;
  }
  q.use_coarse = use_coarse != 0;
  q.adjacency_labels = adjacency != 0;
  q.adjacency_ring = static_cast<int>(ring);
  q.adjacency_value = static_cast<float>(adjacency_value);
  // The same invariants SpaceQuantizer::fit asserts — checked here so a
  // corrupt artifact returns nullopt instead of tripping a contract abort.
  return q.tau > 0.0 && (!q.use_coarse || q.coarse_l > q.tau) &&
         q.adjacency_ring >= 1 && q.adjacency_value >= 0.0f &&
         q.adjacency_value <= 1.0f;
}

void write_grid(ByteWriter& w, const geo::GridQuantizerState& g) {
  w.f64(g.tau);
  w.f64(g.origin_x);
  w.f64(g.origin_y);
  w.u64(g.cell_ix.size());
  for (std::size_t c = 0; c < g.cell_ix.size(); ++c) {
    w.u32(static_cast<std::uint32_t>(g.cell_ix[c]));
    w.u32(static_cast<std::uint32_t>(g.cell_iy[c]));
    w.f64(g.data_centroid[c].x);
    w.f64(g.data_centroid[c].y);
  }
}

bool read_grid(ByteReader& r, geo::GridQuantizerState& g) {
  std::uint64_t classes = 0;
  if (!r.f64(g.tau) || !r.f64(g.origin_x) || !r.f64(g.origin_y) ||
      !r.u64(classes)) {
    return false;
  }
  if (g.tau <= 0.0 || classes == 0) return false;
  std::unordered_set<std::uint64_t> seen;
  for (std::uint64_t c = 0; c < classes; ++c) {
    std::uint32_t ix = 0, iy = 0;
    geo::Point2 centroid;
    if (!r.u32(ix) || !r.u32(iy) || !r.f64(centroid.x) || !r.f64(centroid.y)) {
      return false;
    }
    // restore_state treats duplicate cells as a contract violation; reject
    // them here so corrupt files fail soft.
    if (!seen.insert((std::uint64_t{ix} << 32) | iy).second) return false;
    g.cell_ix.push_back(static_cast<std::int32_t>(ix));
    g.cell_iy.push_back(static_cast<std::int32_t>(iy));
    g.data_centroid.push_back(centroid);
  }
  return true;
}

std::string encode_quantizer(const core::SpaceQuantizer& quantizer) {
  ByteWriter w;
  write_quantize_config(w, quantizer.config());
  write_grid(w, quantizer.fine().export_state());
  if (quantizer.config().use_coarse) write_grid(w, quantizer.coarse().export_state());
  return w.take();
}

bool decode_quantizer(const std::string& payload, core::SpaceQuantizer& quantizer) {
  ByteReader r(payload);
  core::QuantizeConfig config;
  if (!read_quantize_config(r, config)) return false;
  geo::GridQuantizerState fine;
  if (!read_grid(r, fine)) return false;
  if (config.use_coarse) {
    geo::GridQuantizerState coarse;
    if (!read_grid(r, coarse) || !r.exhausted()) return false;
    quantizer.restore(config, fine, &coarse);
  } else {
    if (!r.exhausted()) return false;
    quantizer.restore(config, fine, nullptr);
  }
  return true;
}

std::string encode_meta(const char* kind) {
  ByteWriter w;
  w.u32(kArtifactVersion);
  w.str(kind);
  return w.take();
}

/// Checks the "meta" section and returns its kind tag; nullopt on any
/// version or format mismatch.
std::optional<std::string> read_meta(const SectionReader& sections) {
  const std::string* meta = sections.find("meta");
  if (meta == nullptr) return std::nullopt;
  ByteReader r(*meta);
  std::uint32_t version = 0;
  std::string kind;
  if (!r.u32(version) || version != kArtifactVersion || !r.str(kind) ||
      !r.exhausted()) {
    return std::nullopt;
  }
  return kind;
}

// --- Wi-Fi codec -------------------------------------------------------------

std::string encode_wifi_config(const core::NobleWifiConfig& c) {
  ByteWriter w;
  write_quantize_config(w, c.quantize);
  w.u64(c.hidden_units);
  w.u32(c.predict_building ? 1 : 0);
  w.u32(c.predict_floor ? 1 : 0);
  w.u32(c.hierarchical_decode ? 1 : 0);
  w.f64(c.learning_rate);
  w.f64(c.lr_decay);
  w.u64(c.epochs);
  w.u64(c.batch_size);
  w.u64(c.patience);
  w.f64(c.positive_weight);
  w.u32(static_cast<std::uint32_t>(c.representation));
  w.u64(c.seed);
  return w.take();
}

bool decode_wifi_config(const std::string& payload, core::NobleWifiConfig& c) {
  ByteReader r(payload);
  std::uint32_t building = 0, floor = 0, hierarchical = 0, representation = 0;
  std::uint64_t hidden = 0, epochs = 0, batch = 0, patience = 0, seed = 0;
  if (!read_quantize_config(r, c.quantize) || !r.u64(hidden) || !r.u32(building) ||
      !r.u32(floor) || !r.u32(hierarchical) || !r.f64(c.learning_rate) ||
      !r.f64(c.lr_decay) || !r.u64(epochs) || !r.u64(batch) || !r.u64(patience) ||
      !r.f64(c.positive_weight) || !r.u32(representation) || !r.u64(seed) ||
      !r.exhausted()) {
    return false;
  }
  if (hidden < 2 || representation > 1) return false;  // model-constructor contracts
  c.hidden_units = hidden;
  c.predict_building = building != 0;
  c.predict_floor = floor != 0;
  c.hierarchical_decode = hierarchical != 0;
  c.epochs = epochs;
  c.batch_size = batch;
  c.patience = patience;
  c.representation = static_cast<data::RssiRepresentation>(representation);
  c.seed = seed;
  return true;
}

// --- IMU codec ---------------------------------------------------------------

std::string encode_imu_config(const core::NobleImuConfig& c) {
  ByteWriter w;
  write_quantize_config(w, c.quantize);
  w.u64(c.projection_dim);
  w.f64(c.learning_rate);
  w.f64(c.lr_decay);
  w.u64(c.epochs);
  w.u64(c.batch_size);
  w.f64(c.displacement_weight);
  w.f64(c.segment_supervision_weight);
  w.f64(c.displacement_scale);
  w.f64(c.location_input_scale);
  w.f64(c.positive_weight);
  w.u64(c.seed);
  return w.take();
}

bool decode_imu_config(const std::string& payload, core::NobleImuConfig& c) {
  ByteReader r(payload);
  std::uint64_t projection = 0, epochs = 0, batch = 0, seed = 0;
  if (!read_quantize_config(r, c.quantize) || !r.u64(projection) ||
      !r.f64(c.learning_rate) || !r.f64(c.lr_decay) || !r.u64(epochs) ||
      !r.u64(batch) || !r.f64(c.displacement_weight) ||
      !r.f64(c.segment_supervision_weight) || !r.f64(c.displacement_scale) ||
      !r.f64(c.location_input_scale) || !r.f64(c.positive_weight) || !r.u64(seed) ||
      !r.exhausted()) {
    return false;
  }
  if (projection < 1 || c.displacement_weight < 0.0 ||
      c.segment_supervision_weight < 0.0 || c.displacement_scale <= 0.0) {
    return false;  // tracker-constructor contracts
  }
  c.projection_dim = projection;
  c.epochs = epochs;
  c.batch_size = batch;
  c.seed = seed;
  return true;
}

}  // namespace

// --- public API --------------------------------------------------------------

std::string encode_model(const core::NobleWifiModel& model) {
  NOBLE_EXPECTS(model.fitted());
  SectionWriter sections;
  sections.add("meta", encode_meta(kWifiKind));
  sections.add("config", encode_wifi_config(model.config()));
  sections.add("quantizer", encode_quantizer(model.quantizer()));
  ByteWriter dims;
  dims.u64(model.input_dim());
  dims.u64(model.num_buildings());
  dims.u64(model.num_floors());
  sections.add("dims", dims.take());
  sections.add("net", nn::encode_network(model.network()));
  return sections.encode();
}

std::string encode_model(const core::NobleImuTracker& tracker) {
  NOBLE_EXPECTS(tracker.fitted());
  SectionWriter sections;
  sections.add("meta", encode_meta(kImuKind));
  sections.add("config", encode_imu_config(tracker.config()));
  sections.add("quantizer", encode_quantizer(tracker.quantizer()));
  ByteWriter dims;
  dims.u64(tracker.max_segments());
  dims.u64(tracker.segment_dim());
  sections.add("dims", dims.take());
  ByteWriter norm;
  for (double m : tracker.channel_mean()) norm.f64(m);
  for (double s : tracker.channel_inv_std()) norm.f64(s);
  sections.add("norm", norm.take());
  sections.add("projnet", nn::encode_network(tracker.projection_network()));
  sections.add("seghead", nn::encode_network(tracker.segment_head()));
  sections.add("locnet", nn::encode_network(tracker.location_network()));
  return sections.encode();
}

namespace {

std::optional<core::NobleWifiModel> wifi_from_sections(const SectionReader& sections) {
  const auto kind = read_meta(sections);
  if (!kind.has_value() || *kind != kWifiKind) return std::nullopt;

  const std::string* config_payload = sections.find("config");
  const std::string* quantizer_payload = sections.find("quantizer");
  const std::string* dims_payload = sections.find("dims");
  const std::string* net_payload = sections.find("net");
  if (config_payload == nullptr || quantizer_payload == nullptr ||
      dims_payload == nullptr || net_payload == nullptr) {
    return std::nullopt;
  }

  core::NobleWifiConfig config;
  if (!decode_wifi_config(*config_payload, config)) return std::nullopt;
  core::SpaceQuantizer quantizer;
  if (!decode_quantizer(*quantizer_payload, quantizer)) return std::nullopt;
  // The quantize config is stored in both the "config" and "quantizer"
  // sections (the latter keeps the quantizer self-contained); a file where
  // the two copies disagree was edited or corrupted.
  if (!(config.quantize == quantizer.config())) return std::nullopt;

  ByteReader dims(*dims_payload);
  std::uint64_t input_dim = 0, num_buildings = 0, num_floors = 0;
  if (!dims.u64(input_dim) || !dims.u64(num_buildings) || !dims.u64(num_floors) ||
      !dims.exhausted() || input_dim == 0) {
    return std::nullopt;
  }
  // Necessary-condition bound before building the network: a valid artifact's
  // "net" payload holds the (input_dim x hidden) and (hidden x layout-total)
  // weight tensors, so dims exceeding it are corrupt — reject them here
  // rather than dying on a gigantic allocation inside restore().
  const std::uint64_t net_floats = net_payload->size() / sizeof(float);
  if (input_dim > net_floats / config.hidden_units ||
      num_buildings > net_floats / config.hidden_units ||
      num_floors > net_floats / config.hidden_units) {
    return std::nullopt;
  }

  core::NobleWifiModel model(config);
  model.restore(quantizer, static_cast<std::size_t>(input_dim),
                static_cast<std::size_t>(num_buildings),
                static_cast<std::size_t>(num_floors));
  if (!nn::decode_network(model.network(), *net_payload)) return std::nullopt;
  return model;
}

std::optional<core::NobleImuTracker> imu_from_sections(const SectionReader& sections) {
  const auto kind = read_meta(sections);
  if (!kind.has_value() || *kind != kImuKind) return std::nullopt;

  const std::string* config_payload = sections.find("config");
  const std::string* quantizer_payload = sections.find("quantizer");
  const std::string* dims_payload = sections.find("dims");
  const std::string* norm_payload = sections.find("norm");
  const std::string* proj_payload = sections.find("projnet");
  const std::string* seg_payload = sections.find("seghead");
  const std::string* loc_payload = sections.find("locnet");
  if (config_payload == nullptr || quantizer_payload == nullptr ||
      dims_payload == nullptr || norm_payload == nullptr || proj_payload == nullptr ||
      seg_payload == nullptr || loc_payload == nullptr) {
    return std::nullopt;
  }

  core::NobleImuConfig config;
  if (!decode_imu_config(*config_payload, config)) return std::nullopt;
  core::SpaceQuantizer quantizer;
  if (!decode_quantizer(*quantizer_payload, quantizer)) return std::nullopt;
  if (!(config.quantize == quantizer.config())) return std::nullopt;

  ByteReader dims(*dims_payload);
  std::uint64_t max_segments = 0, segment_dim = 0;
  if (!dims.u64(max_segments) || !dims.u64(segment_dim) || !dims.exhausted() ||
      max_segments == 0 || segment_dim == 0 || segment_dim % 6 != 0) {
    return std::nullopt;
  }
  // Corrupt-dims bounds (see the wifi loader): the projection payload must
  // hold the (segment_dim x projection_dim) weights, and feature_dim =
  // max_segments * segment_dim must not overflow size_t.
  const std::uint64_t proj_floats = proj_payload->size() / sizeof(float);
  if (segment_dim > proj_floats / config.projection_dim ||
      max_segments > std::numeric_limits<std::size_t>::max() / segment_dim) {
    return std::nullopt;
  }

  ByteReader norm(*norm_payload);
  std::array<double, 6> mean{}, inv_std{};
  for (double& m : mean)
    if (!norm.f64(m)) return std::nullopt;
  for (double& s : inv_std)
    if (!norm.f64(s)) return std::nullopt;
  if (!norm.exhausted()) return std::nullopt;

  core::NobleImuTracker tracker(config);
  tracker.restore(quantizer, static_cast<std::size_t>(max_segments),
                  static_cast<std::size_t>(segment_dim), mean, inv_std);
  if (!nn::decode_network(tracker.projection_network(), *proj_payload) ||
      !nn::decode_network(tracker.segment_head(), *seg_payload) ||
      !nn::decode_network(tracker.location_network(), *loc_payload)) {
    return std::nullopt;
  }
  return tracker;
}

}  // namespace

std::optional<core::NobleWifiModel> decode_wifi_model(std::string data) {
  SectionReader sections;
  if (!sections.parse(std::move(data))) return std::nullopt;
  return wifi_from_sections(sections);
}

std::optional<core::NobleImuTracker> decode_imu_model(std::string data) {
  SectionReader sections;
  if (!sections.parse(std::move(data))) return std::nullopt;
  return imu_from_sections(sections);
}

bool save_model(const core::NobleWifiModel& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string data = encode_model(model);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

bool save_model(const core::NobleImuTracker& tracker, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  const std::string data = encode_model(tracker);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<core::NobleWifiModel> load_wifi_model(const std::string& path) {
  SectionReader sections;
  if (!sections.read_file(path)) return std::nullopt;
  return wifi_from_sections(sections);
}

std::optional<core::NobleImuTracker> load_imu_model(const std::string& path) {
  SectionReader sections;
  if (!sections.read_file(path)) return std::nullopt;
  return imu_from_sections(sections);
}

std::optional<std::string> artifact_kind(const std::string& path) {
  SectionReader sections;
  if (!sections.read_file(path)) return std::nullopt;
  return read_meta(sections);
}

}  // namespace noble::serve
