// Load-time network optimization for serving.
//
// An OptimizedNetwork is an execution plan compiled once from a fitted
// nn::Sequential: every Dense layer becomes one fused kernel call with its
// weights pre-packed into the kernel layer's blocked layout, a following
// BatchNorm1d is folded into the call's per-channel affine epilogue, and a
// following activation (Tanh/Relu/Sigmoid) rides the same epilogue. Layers
// the optimizer doesn't recognize execute unchanged through Layer::infer, so
// any network the trainer can produce still serves correctly.
//
// Exactness contract: optimization never changes a single output bit.
//   - Pre-packing only permutes weight storage; the kernels accumulate in
//     the reference order regardless of layout.
//   - BN folding does NOT scale the weight matrix (that would re-associate
//     fp32 products). It precomputes inv_std = 1/sqrt(running_var + eps) per
//     channel and applies gamma*(v - mean)*inv_std + beta — the literal
//     BatchNorm1d::infer expression — after the GEMM.
//   - Fused activations run the literal activation-layer expressions.
// `predict` is therefore bit-identical to running the original Sequential
// (fp32 plans) or core::QuantizedNetwork (int8 plans), which is what lets
// the serving stack adopt plans with zero training-code changes and keeps
// the engine's tolerance-zero equivalence harness meaningful.
//
// Plans are immutable after construction and safe to share across threads
// and replicas (engine backends share one plan via shared_ptr instead of
// re-packing per clone). Passthrough steps borrow Layer pointers from the
// source network: the network object may move (layers are heap-allocated,
// their addresses are stable) but must outlive the plan.
#ifndef NOBLE_SERVE_OPTIMIZED_H_
#define NOBLE_SERVE_OPTIMIZED_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "kernels/kernels.h"
#include "linalg/matrix.h"
#include "nn/network.h"

namespace noble::serve {

/// What the optimizer did to a network — telemetry for bench headers and the
/// fusion test suites.
struct OptimizedStats {
  std::size_t fused_dense = 0;         ///< Dense layers lowered to kernel calls
  std::size_t folded_batchnorm = 0;    ///< BatchNorm1d folded into epilogues
  std::size_t fused_activations = 0;   ///< activations fused into epilogues
  std::size_t passthrough_layers = 0;  ///< layers served via Layer::infer
  std::size_t packed_bytes = 0;        ///< pre-packed weight storage (+scales)
};

/// Immutable fused/pre-packed serving plan. See the file comment for the
/// exactness contract.
class OptimizedNetwork {
 public:
  /// Arithmetic the plan's Dense steps run in.
  enum class Precision {
    kFloat32,  ///< packed fp32 GEMM — bit-identical to Sequential::predict
    kInt8,     ///< packed int8 GEMM — bit-identical to QuantizedNetwork::predict
  };

  /// Compiles a plan from a fitted network. For kInt8 the network must
  /// contain at least one Dense layer (there is nothing to quantize
  /// otherwise). The network must outlive the plan.
  OptimizedNetwork(const nn::Sequential& net, Precision precision);

  /// Runs the plan. Thread-safe, deterministic, batch-invariant.
  linalg::Mat predict(const linalg::Mat& x) const;

  Precision precision() const { return precision_; }
  const OptimizedStats& stats() const { return stats_; }

 private:
  /// One fused execution step: either a kernel call (packed weights + fused
  /// epilogue) or a borrowed passthrough layer.
  struct Step {
    const nn::Layer* passthrough = nullptr;  ///< set => run Layer::infer
    kernels::PackedDense packed;             ///< fp32 weights (kFloat32)
    kernels::PackedQuantized qpacked;        ///< int8 weights (kInt8)
    std::vector<float> bias;
    std::optional<kernels::BnFold> bn;
    kernels::Activation act = kernels::Activation::kNone;
  };

  Precision precision_;
  std::vector<Step> steps_;
  OptimizedStats stats_;
};

/// Builds a shared immutable plan — the form the serving stack passes around
/// (localizer plus every replica clone hold the same pointer).
std::shared_ptr<const OptimizedNetwork> optimize_network(
    const nn::Sequential& net, OptimizedNetwork::Precision precision);

}  // namespace noble::serve

#endif  // NOBLE_SERVE_OPTIMIZED_H_
