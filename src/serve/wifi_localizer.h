// Immutable Wi-Fi serving front end: single-query and batched localization
// over a fitted NObLe model, decoupled from the dataset machinery.
//
// Construction is the only mutation. `locate` / `locate_batch` are const
// and run through the network's mutation-free inference path, so one
// localizer can serve concurrent threads without synchronization — the
// paper's on-device deployment story (§IV-C) as an API contract.
#ifndef NOBLE_SERVE_WIFI_LOCALIZER_H_
#define NOBLE_SERVE_WIFI_LOCALIZER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/noble_wifi.h"
#include "serve/fix.h"
#include "serve/optimized.h"

namespace noble::serve {

class WifiLocalizer {
 public:
  /// Takes ownership of a fitted model. Precondition: model.fitted().
  explicit WifiLocalizer(core::NobleWifiModel model);

  /// Deep-copies the deployable state of a fitted model, leaving the
  /// original usable (the in-memory counterpart of save + load).
  static WifiLocalizer from_model(const core::NobleWifiModel& model);

  /// Loads from an artifact written by serve::save_model; nullopt when the
  /// file is unreadable, malformed or not a "wifi" artifact.
  static std::optional<WifiLocalizer> load(const std::string& path);

  /// Localizes one raw RSSI scan (rssi.size() == num_aps()). Thread-safe.
  Fix locate(const RssiVector& rssi) const;

  /// Localizes a batch in one network pass (amortizes the GEMM); returns
  /// one Fix per query, identical to per-query `locate` results. The span
  /// converts implicitly from a std::vector<RssiVector>.
  std::vector<Fix> locate_batch(std::span<const RssiVector> queries) const;

  /// Stacks raw scans into the normalized feature matrix the network
  /// consumes. Public so alternate forward paths (the engine's backend
  /// replicas) share the exact featurization of the float path.
  linalg::Mat featurize(std::span<const RssiVector> queries) const;

  /// Decodes one row of output logits into a Fix — the other half of the
  /// shared backend plumbing. `logits` must have layout().total() entries.
  Fix decode_logits(const float* logits) const;

  /// Expected scan width (access-point count the model was fitted on).
  std::size_t num_aps() const { return model_.input_dim(); }

  /// Content identity of the fitted model: FNV-1a over its serialized
  /// artifact bytes, computed once at construction. Two localizers with
  /// equal digests serve bit-identical fixes (same weights, same quantizer)
  /// — the comparison the cluster uses to decide where a spilled request
  /// may land and when a rollout has converged.
  std::uint64_t artifact_digest() const { return artifact_digest_; }

  const core::SpaceQuantizer& quantizer() const { return model_.quantizer(); }
  const core::NobleWifiModel& model() const { return model_; }

  /// The load-time-optimized fp32 execution plan (BN-folded, fused,
  /// pre-packed) `locate` / `locate_batch` run through — bit-identical to
  /// the raw network by the OptimizedNetwork exactness contract. Shared so
  /// engine replicas can serve from one immutable packed weight set.
  std::shared_ptr<const OptimizedNetwork> plan() const { return plan_; }

 private:
  core::NobleWifiModel model_;
  // Built once at construction (the serving "load_model optimization pass");
  // borrows only heap-stable layer state, so moving the localizer is safe.
  std::shared_ptr<const OptimizedNetwork> plan_;
  std::uint64_t artifact_digest_ = 0;
};

}  // namespace noble::serve

#endif  // NOBLE_SERVE_WIFI_LOCALIZER_H_
