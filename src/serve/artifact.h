// Versioned single-file model artifacts: the complete deployable state of a
// fitted model — config, space quantizer, label layout dimensions,
// per-channel normalization, and every network tensor — in one tagged
// binary container (nn/serialize's "NOBS1" named sections).
//
// This is what `nn::save_weights` alone cannot do: a weights file needs the
// training pipeline alive to rebuild the architecture and quantizer, while
// an artifact reloads into a serving localizer with nothing but this file.
//
// Layout (container sections):
//   "meta"      u32 artifact version, string kind ("wifi" | "imu")
//   "config"    full model hyperparameter struct
//   "quantizer" QuantizeConfig + fine grid snapshot [+ coarse grid snapshot]
//   "dims"      model input-layout dimensions
//   "norm"      (imu) 6 channel means + 6 inverse stds
//   "net"       (wifi) all network tensors    — nn::encode_network
//   "projnet" / "seghead" / "locnet" (imu)    — nn::encode_network each
#ifndef NOBLE_SERVE_ARTIFACT_H_
#define NOBLE_SERVE_ARTIFACT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "core/noble_imu.h"
#include "core/noble_wifi.h"

namespace noble::serve {

/// Bumped when any section payload changes shape.
inline constexpr std::uint32_t kArtifactVersion = 1;

/// Artifact kind tags stored in the "meta" section.
inline constexpr char kWifiKind[] = "wifi";
inline constexpr char kImuKind[] = "imu";

/// Serializes a fitted model into one artifact file. Returns false on I/O
/// failure. Precondition: model.fitted().
bool save_model(const core::NobleWifiModel& model, const std::string& path);
bool save_model(const core::NobleImuTracker& tracker, const std::string& path);

/// Reloads a fitted model from an artifact, without any training data.
/// Returns nullopt when the file is missing, malformed, truncated, of the
/// wrong kind, or carries an unsupported version.
std::optional<core::NobleWifiModel> load_wifi_model(const std::string& path);
std::optional<core::NobleImuTracker> load_imu_model(const std::string& path);

/// Kind tag of an artifact ("wifi" / "imu") without loading the model;
/// nullopt when the file is not a readable artifact.
std::optional<std::string> artifact_kind(const std::string& path);

/// In-memory codecs behind the file API — also the deep-copy path the
/// localizers use to clone a fitted model without consuming it.
std::string encode_model(const core::NobleWifiModel& model);
std::string encode_model(const core::NobleImuTracker& tracker);
std::optional<core::NobleWifiModel> decode_wifi_model(std::string data);
std::optional<core::NobleImuTracker> decode_imu_model(std::string data);

}  // namespace noble::serve

#endif  // NOBLE_SERVE_ARTIFACT_H_
