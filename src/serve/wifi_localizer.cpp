#include "serve/wifi_localizer.h"

#include <cmath>
#include <utility>

#include "common/hash.h"
#include "data/preprocess.h"
#include "serve/artifact.h"

namespace noble::serve {

WifiLocalizer::WifiLocalizer(core::NobleWifiModel model) : model_(std::move(model)) {
  NOBLE_EXPECTS(model_.fitted());
  plan_ = optimize_network(model_.network(), OptimizedNetwork::Precision::kFloat32);
  // Serialized-artifact bytes are the canonical identity: a loaded artifact
  // and its in-memory original digest identically, and retraining (new
  // weights) always changes the bytes.
  artifact_digest_ = common::fnv1a64(encode_model(model_));
}

WifiLocalizer WifiLocalizer::from_model(const core::NobleWifiModel& model) {
  auto clone = decode_wifi_model(encode_model(model));
  NOBLE_CHECK(clone.has_value());  // a fitted model always round-trips
  return WifiLocalizer(std::move(*clone));
}

std::optional<WifiLocalizer> WifiLocalizer::load(const std::string& path) {
  auto model = load_wifi_model(path);
  if (!model.has_value()) return std::nullopt;
  return WifiLocalizer(std::move(*model));
}

linalg::Mat WifiLocalizer::featurize(std::span<const RssiVector> queries) const {
  linalg::Mat raw(queries.size(), model_.input_dim());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    NOBLE_EXPECTS(queries[i].size() == model_.input_dim());
    float* row = raw.row(i);
    for (std::size_t j = 0; j < queries[i].size(); ++j) row[j] = queries[i][j];
  }
  return data::normalize_rssi(raw, model_.config().representation);
}

Fix WifiLocalizer::decode_logits(const float* logits) const {
  const core::LabelLayout& layout = model_.layout();
  const bool hierarchical =
      model_.config().hierarchical_decode && layout.num_coarse > 0;
  const core::DecodedPrediction d =
      hierarchical ? model_.quantizer().decode_hierarchical(layout, logits)
                   : model_.quantizer().decode(layout, logits);
  Fix fix;
  fix.building = d.building;
  fix.floor = d.floor;
  fix.fine_class = d.fine_class;
  fix.position = d.position;
  const double logit =
      logits[layout.fine_offset() + static_cast<std::size_t>(d.fine_class)];
  fix.confidence = 1.0 / (1.0 + std::exp(-logit));
  return fix;
}

Fix WifiLocalizer::locate(const RssiVector& rssi) const {
  const linalg::Mat logits =
      plan_->predict(featurize(std::span<const RssiVector>(&rssi, 1)));
  return decode_logits(logits.row(0));
}

std::vector<Fix> WifiLocalizer::locate_batch(std::span<const RssiVector> queries) const {
  std::vector<Fix> out;
  if (queries.empty()) return out;
  const linalg::Mat logits = plan_->predict(featurize(queries));
  out.reserve(queries.size());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    out.push_back(decode_logits(logits.row(i)));
  }
  return out;
}

}  // namespace noble::serve
