// Immutable IMU serving front end plus streaming tracking sessions.
//
// Batch training-side inference (§V) pads every path to max_segments and
// runs the weight-shared projection / displacement modules over the whole
// layout at once. At serve time a device produces one inter-reference
// window at a time; because those modules are weight-shared and the path
// displacement is their masked sum, each segment can be processed the
// moment it arrives. `TrackingSession` does exactly that: one small
// single-segment pass per update, an accumulated displacement sum, and a
// position fix after every segment — numerically identical to the batch
// path on the same (<= max_segments) windows, with no pre-padded dataset.
#ifndef NOBLE_SERVE_IMU_LOCALIZER_H_
#define NOBLE_SERVE_IMU_LOCALIZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/noble_imu.h"
#include "serve/fix.h"

namespace noble::serve {

class TrackingSession;

class ImuLocalizer {
 public:
  /// Takes ownership of a fitted tracker. Precondition: tracker.fitted().
  explicit ImuLocalizer(core::NobleImuTracker tracker);

  /// Deep-copies the deployable state of a fitted tracker, leaving the
  /// original usable (the in-memory counterpart of save + load).
  static ImuLocalizer from_model(const core::NobleImuTracker& tracker);

  /// Loads from an artifact written by serve::save_model; nullopt when the
  /// file is unreadable, malformed or not an "imu" artifact.
  static std::optional<ImuLocalizer> load(const std::string& path);

  /// End-of-path fix for a complete walk from `start` over `segments`
  /// (each segment_dim() floats). Thread-safe. Equivalent to streaming the
  /// segments through one session.
  Fix locate(const geo::Point2& start, const std::vector<ImuSegment>& segments) const;

  /// Opens a streaming session anchored at `start`. The localizer must
  /// outlive every session it spawns; sessions are independent, so one
  /// localizer can serve many concurrent tracks.
  TrackingSession start_session(const geo::Point2& start) const;

  /// Displacement estimate (meters) of one segment through the shared
  /// projection + displacement modules — the §V-B environment-agnostic
  /// reuse path, exposed per segment.
  geo::Point2 segment_displacement(const ImuSegment& segment) const;

  /// Cross-track coalesced update: consumes `segments[i]` into
  /// `*sessions[i]` and returns one fix per track, serving the whole batch
  /// with a single projection/displacement pass and a single location-head
  /// pass — the session-path analogue of Wi-Fi micro-batching, and the
  /// entry point the engine's worker pool coalesces different tracks
  /// through. Every module in the path processes matrix rows independently
  /// (the batch dimension never mixes), so each returned fix is
  /// bit-identical to `sessions[i]->update(*segments[i])` applied serially.
  /// Preconditions: parallel spans of distinct sessions owned by this
  /// localizer, each segment segment_dim() floats.
  std::vector<Fix> update_sessions(const std::vector<TrackingSession*>& sessions,
                                   const std::vector<const ImuSegment*>& segments) const;

  /// Expected floats per segment window.
  std::size_t segment_dim() const { return tracker_.segment_dim(); }

  /// Content identity of the fitted tracker: FNV-1a over its serialized
  /// artifact bytes, computed once at construction (see
  /// WifiLocalizer::artifact_digest).
  std::uint64_t artifact_digest() const { return artifact_digest_; }

  const core::SpaceQuantizer& quantizer() const { return tracker_.quantizer(); }
  const core::NobleImuTracker& tracker() const { return tracker_; }

 private:
  friend class TrackingSession;

  /// Builds the single-segment clones of the weight-shared modules.
  void build_segment_nets();

  /// Raw displacement of one standardized segment in the model's scaled
  /// units (meters / displacement_scale) — the unit the batch path sums in,
  /// so sessions accumulate it to stay bit-identical with batch inference.
  geo::Point2 segment_output_scaled(const ImuSegment& segment) const;

  /// Fix for an accumulated scaled displacement from `start_class`.
  /// Delegates to fixes_from with a batch of one.
  Fix fix_from(int start_class, const geo::Point2& scaled_displacement) const;

  /// Batched location head: one network pass over every track's
  /// (start_class, accumulated scaled displacement) row. Row-independent
  /// end to end — location_inputs, the RBF head and the quantizer decode
  /// all work per row — so batch results are bit-identical to per-track
  /// calls; fix_from is literally this at batch 1.
  std::vector<Fix> fixes_from(const std::vector<int>& start_classes,
                              const std::vector<geo::Point2>& scaled) const;

  core::NobleImuTracker tracker_;
  /// Single-segment (segments=1) clones sharing the fitted weights: the
  /// per-update cost is one segment's work, not a full padded layout.
  nn::Sequential seg_proj_;
  nn::Sequential seg_head_;
  std::uint64_t artifact_digest_ = 0;
};

/// One live track: consumes IMU segments incrementally, emits a fix per
/// update (the paper's §V usage). Cheap value object; holds a pointer to
/// its parent localizer. Not thread-safe itself — use one session per
/// track — but any number of sessions may share a localizer.
class TrackingSession {
 public:
  /// Consumes one segment and returns the updated end-position fix.
  Fix update(const ImuSegment& segment);

  /// Current fix without consuming anything (the start-cell fix before the
  /// first update).
  Fix current() const;

  /// Accumulated displacement estimate since start (meters).
  geo::Point2 displacement() const;

  std::size_t segments_consumed() const { return consumed_; }
  const geo::Point2& start() const { return start_; }

 private:
  friend class ImuLocalizer;
  TrackingSession(const ImuLocalizer* owner, const geo::Point2& start);

  const ImuLocalizer* owner_;
  geo::Point2 start_;
  int start_class_;
  /// Scaled-unit running sum, accumulated in double exactly like the batch
  /// path's masked segment sum.
  double sum_x_ = 0.0, sum_y_ = 0.0;
  std::size_t consumed_ = 0;
};

}  // namespace noble::serve

#endif  // NOBLE_SERVE_IMU_LOCALIZER_H_
