// noble::serve — deployable inference API: request/response types.
//
// The training side of the repo (core/) speaks datasets; the serve side
// speaks single queries. These are the wire-shaped structs a device or RPC
// layer would marshal: a raw RSSI scan or IMU segment in, a position fix
// out. No dataset machinery, no training state.
#ifndef NOBLE_SERVE_FIX_H_
#define NOBLE_SERVE_FIX_H_

#include <vector>

#include "geo/point.h"

namespace noble::serve {

/// One raw Wi-Fi scan: an RSSI value per access point in dBm, with
/// data::kNotDetectedRssi (+100) for APs not seen — exactly the offline
/// fingerprint layout, so a deployed scanner needs no preprocessing.
using RssiVector = std::vector<float>;

/// One inter-reference IMU window, resampled to the fixed per-segment
/// layout the model was trained with (`segment_dim` floats, reading-major
/// [ax ay az gx gy gz] per reading — sim::resample_window's output).
using ImuSegment = std::vector<float>;

/// A single localization answer.
struct Fix {
  int building = -1;  ///< -1 when the model has no building head.
  int floor = -1;     ///< -1 when the model has no floor head.
  int fine_class = 0;  ///< predicted neighborhood class (§III-B).
  geo::Point2 position;  ///< decoded cell-center position (meters).
  /// Sigmoid of the winning fine-class logit: the BCE-trained network's own
  /// score that the query lies in the predicted cell. Monotone in the
  /// logit, not a calibrated probability.
  double confidence = 0.0;

  /// Exact field-wise equality — the bit-identity comparison every
  /// engine/fleet equivalence gate uses. Intentionally exact float
  /// compares: "routed == direct" means identical, not close.
  bool operator==(const Fix& other) const = default;
};

}  // namespace noble::serve

#endif  // NOBLE_SERVE_FIX_H_
