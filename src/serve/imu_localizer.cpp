#include "serve/imu_localizer.h"

#include <cmath>
#include <utility>

#include "common/fpmath.h"
#include "common/hash.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/serialize.h"
#include "serve/artifact.h"

namespace noble::serve {

ImuLocalizer::ImuLocalizer(core::NobleImuTracker tracker)
    : tracker_(std::move(tracker)) {
  NOBLE_EXPECTS(tracker_.fitted());
  build_segment_nets();
  artifact_digest_ = common::fnv1a64(encode_model(tracker_));
}

void ImuLocalizer::build_segment_nets() {
  // The projection and displacement modules are weight-shared across
  // segments, so their tensors are segment-count independent: a segments=1
  // clone accepts the fitted weights unchanged and processes one window at
  // a fraction of the padded-layout cost.
  Rng rng(0);  // placeholder init, overwritten below
  seg_proj_ = nn::Sequential();
  seg_proj_.emplace<nn::TimeDistributedDense>(1, tracker_.segment_dim(),
                                              tracker_.config().projection_dim, rng);
  seg_proj_.emplace<nn::Tanh>();
  seg_head_ = nn::Sequential();
  seg_head_.emplace<nn::TimeDistributedDense>(1, tracker_.config().projection_dim, 2,
                                              rng);
  NOBLE_CHECK(
      nn::decode_network(seg_proj_, nn::encode_network(tracker_.projection_network())));
  NOBLE_CHECK(
      nn::decode_network(seg_head_, nn::encode_network(tracker_.segment_head())));
}

ImuLocalizer ImuLocalizer::from_model(const core::NobleImuTracker& tracker) {
  auto clone = decode_imu_model(encode_model(tracker));
  NOBLE_CHECK(clone.has_value());  // a fitted tracker always round-trips
  return ImuLocalizer(std::move(*clone));
}

std::optional<ImuLocalizer> ImuLocalizer::load(const std::string& path) {
  auto tracker = load_imu_model(path);
  if (!tracker.has_value()) return std::nullopt;
  return ImuLocalizer(std::move(*tracker));
}

geo::Point2 ImuLocalizer::segment_output_scaled(const ImuSegment& segment) const {
  NOBLE_EXPECTS(segment.size() == tracker_.segment_dim());
  // Per-channel standardization, float-cast exactly like the batch path's
  // scaled_features so streamed and padded inference stay bit-identical.
  const auto mean = tracker_.channel_mean();
  const auto inv_std = tracker_.channel_inv_std();
  linalg::Mat x(1, segment.size());
  float* row = x.row(0);
  for (std::size_t j = 0; j < segment.size(); ++j) {
    const std::size_t ch = j % 6;
    row[j] = static_cast<float>((segment[j] - mean[ch]) * inv_std[ch]);
  }
  const linalg::Mat d = seg_head_.predict(seg_proj_.predict(x));
  return {static_cast<double>(d(0, 0)), static_cast<double>(d(0, 1))};
}

geo::Point2 ImuLocalizer::segment_displacement(const ImuSegment& segment) const {
  const geo::Point2 scaled = segment_output_scaled(segment);
  return scaled * tracker_.config().displacement_scale;
}

Fix ImuLocalizer::fix_from(int start_class, const geo::Point2& scaled_displacement) const {
  // Sharing fixes_from makes "batch 1 == direct" true by construction: the
  // coalesced path and the per-track path are the same code.
  return fixes_from({start_class}, {scaled_displacement}).front();
}

std::vector<Fix> ImuLocalizer::fixes_from(const std::vector<int>& start_classes,
                                          const std::vector<geo::Point2>& scaled) const {
  NOBLE_EXPECTS(start_classes.size() == scaled.size());
  NOBLE_EXPECTS(!scaled.empty());
  const std::size_t n = scaled.size();
  linalg::Mat v(n, 2);
  for (std::size_t i = 0; i < n; ++i) {
    v(i, 0) = static_cast<float>(scaled[i].x);
    v(i, 1) = static_cast<float>(scaled[i].y);
  }
  const linalg::Mat in = tracker_.location_inputs(v, start_classes);
  const linalg::Mat logits = tracker_.location_network().predict(in);
  const core::LabelLayout layout =
      tracker_.quantizer().layout(/*num_buildings=*/0, /*num_floors=*/0);
  std::vector<Fix> fixes(n);
  for (std::size_t i = 0; i < n; ++i) {
    const core::DecodedPrediction d = tracker_.quantizer().decode(layout, logits.row(i));
    fixes[i].fine_class = d.fine_class;
    fixes[i].position = d.position;
    const double logit =
        logits(i, layout.fine_offset() + static_cast<std::size_t>(d.fine_class));
    fixes[i].confidence = 1.0 / (1.0 + std::exp(-logit));
  }
  return fixes;
}

std::vector<Fix> ImuLocalizer::update_sessions(
    const std::vector<TrackingSession*>& sessions,
    const std::vector<const ImuSegment*>& segments) const {
  NOBLE_EXPECTS(sessions.size() == segments.size());
  NOBLE_EXPECTS(!sessions.empty());
  const std::size_t n = sessions.size();
  const auto mean = tracker_.channel_mean();
  const auto inv_std = tracker_.channel_inv_std();
  const std::size_t dim = tracker_.segment_dim();
  // One standardized matrix, one projection pass, one displacement pass —
  // rows from different tracks never mix (every layer is row-independent),
  // they only share the GEMM.
  linalg::Mat x(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    NOBLE_EXPECTS(sessions[i]->owner_ == this);
    NOBLE_EXPECTS(segments[i]->size() == dim);
    float* row = x.row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      const std::size_t ch = j % 6;
      row[j] = static_cast<float>(((*segments[i])[j] - mean[ch]) * inv_std[ch]);
    }
  }
  const linalg::Mat d = seg_head_.predict(seg_proj_.predict(x));
  std::vector<int> starts(n);
  std::vector<geo::Point2> sums(n);
  for (std::size_t i = 0; i < n; ++i) {
    // The same double accumulation update() performs, applied in batch
    // order — callers pass distinct sessions, so order cannot matter.
    TrackingSession& session = *sessions[i];
    session.sum_x_ += static_cast<double>(d(i, 0));
    session.sum_y_ += static_cast<double>(d(i, 1));
    ++session.consumed_;
    starts[i] = session.start_class_;
    sums[i] = {session.sum_x_, session.sum_y_};
  }
  return fixes_from(starts, sums);
}

Fix ImuLocalizer::locate(const geo::Point2& start,
                         const std::vector<ImuSegment>& segments) const {
  // Same double accumulator a streaming session maintains, but only one
  // location-head pass at the end — whole-path queries don't pay for the
  // per-update fixes they would discard.
  double sum_x = 0.0, sum_y = 0.0;
  for (const ImuSegment& segment : segments) {
    const geo::Point2 scaled = segment_output_scaled(segment);
    sum_x += scaled.x;
    sum_y += scaled.y;
  }
  return fix_from(tracker_.quantizer().fine_class_of(start), {sum_x, sum_y});
}

TrackingSession ImuLocalizer::start_session(const geo::Point2& start) const {
  return TrackingSession(this, start);
}

TrackingSession::TrackingSession(const ImuLocalizer* owner, const geo::Point2& start)
    : owner_(owner),
      start_(start),
      start_class_(owner->tracker_.quantizer().fine_class_of(start)) {}

Fix TrackingSession::update(const ImuSegment& segment) {
  // Weight sharing + sum decomposition: the path displacement is the sum of
  // per-segment estimates, so each arriving window folds into a running
  // double sum — the same accumulator the batch path's masked segment sum
  // uses over the padded layout.
  const geo::Point2 scaled = owner_->segment_output_scaled(segment);
  sum_x_ += scaled.x;
  sum_y_ += scaled.y;
  ++consumed_;
  return current();
}

Fix TrackingSession::current() const {
  return owner_->fix_from(start_class_, {sum_x_, sum_y_});
}

geo::Point2 TrackingSession::displacement() const {
  // Round the sums to float first, matching the batch path (which stores
  // them in a float32 matrix). stable_round guarantees the narrowing really
  // happens — see common/fpmath.h for the GCC 12 SLP miscompile it guards
  // against.
  const double scale = owner_->tracker_.config().displacement_scale;
  return {noble::detail::stable_round(sum_x_) * scale,
          noble::detail::stable_round(sum_y_) * scale};
}

}  // namespace noble::serve
