#include "serve/optimized.h"

#include <cmath>

#include "common/check.h"
#include "core/quantize.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"

namespace noble::serve {

namespace {

/// Maps an activation layer to its fused epilogue form; kNone for layers
/// that aren't a recognized elementwise activation.
kernels::Activation classify_activation(const nn::Layer& layer) {
  if (dynamic_cast<const nn::Tanh*>(&layer) != nullptr) {
    return kernels::Activation::kTanh;
  }
  if (dynamic_cast<const nn::Relu*>(&layer) != nullptr) {
    return kernels::Activation::kRelu;
  }
  if (dynamic_cast<const nn::Sigmoid*>(&layer) != nullptr) {
    return kernels::Activation::kSigmoid;
  }
  return kernels::Activation::kNone;
}

/// Folds a BatchNorm1d into the per-channel affine epilogue, precomputing
/// inv_std with the exact BatchNorm1d::infer expression so the fused form is
/// tolerance-zero equal to running the layer.
kernels::BnFold fold_batchnorm(const nn::BatchNorm1d& bn, std::size_t dim) {
  kernels::BnFold fold;
  fold.gamma.assign(bn.gamma().row(0), bn.gamma().row(0) + dim);
  fold.mean.assign(bn.running_mean().row(0), bn.running_mean().row(0) + dim);
  fold.beta.assign(bn.beta().row(0), bn.beta().row(0) + dim);
  fold.inv_std.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) {
    fold.inv_std[j] = 1.0f / std::sqrt(bn.running_var()(0, j) + bn.eps());
  }
  return fold;
}

}  // namespace

OptimizedNetwork::OptimizedNetwork(const nn::Sequential& net, Precision precision)
    : precision_(precision) {
  NOBLE_EXPECTS(net.layer_count() > 0);
  const std::size_t count = net.layer_count();
  for (std::size_t i = 0; i < count; ++i) {
    const auto* dense = dynamic_cast<const nn::Dense*>(&net.layer(i));
    if (dense == nullptr) {
      Step step;
      step.passthrough = &net.layer(i);
      steps_.push_back(std::move(step));
      ++stats_.passthrough_layers;
      continue;
    }
    Step step;
    const std::size_t out_dim = dense->out();
    step.bias.assign(dense->bias().row(0), dense->bias().row(0) + out_dim);
    // Absorb a directly following BatchNorm1d into the affine epilogue...
    if (i + 1 < count) {
      const auto* bn = dynamic_cast<const nn::BatchNorm1d*>(&net.layer(i + 1));
      if (bn != nullptr && bn->gamma().cols() == out_dim) {
        step.bn = fold_batchnorm(*bn, out_dim);
        ++stats_.folded_batchnorm;
        ++i;
      }
    }
    // ...then a following activation into the same kernel call.
    if (i + 1 < count) {
      const kernels::Activation act = classify_activation(net.layer(i + 1));
      if (act != kernels::Activation::kNone) {
        step.act = act;
        ++stats_.fused_activations;
        ++i;
      }
    }
    if (precision_ == Precision::kFloat32) {
      step.packed = kernels::pack_dense(dense->weights());
      stats_.packed_bytes += step.packed.bytes();
    } else {
      const core::QuantizedDense q = core::quantize_dense(*dense);
      kernels::QuantizedView view;
      view.weights = q.weights.data();
      view.scales = q.scales.data();
      view.in_dim = q.in_dim;
      view.out_dim = q.out_dim;
      step.qpacked = kernels::pack_quantized(view);
      stats_.packed_bytes += step.qpacked.bytes();
    }
    ++stats_.fused_dense;
    steps_.push_back(std::move(step));
  }
  // An int8 plan with no dense layer has no GEMM to quantize — same contract
  // as core::QuantizedNetwork.
  NOBLE_ENSURES(precision_ == Precision::kFloat32 || stats_.fused_dense >= 1);
}

linalg::Mat OptimizedNetwork::predict(const linalg::Mat& x) const {
  NOBLE_EXPECTS(!steps_.empty());
  linalg::Mat cur, next;
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    const Step& step = steps_[s];
    // Step 0 reads `x` in place — every path takes separate in/out matrices,
    // so the input never needs a deep copy.
    const linalg::Mat& in = s == 0 ? x : cur;
    if (step.passthrough != nullptr) {
      step.passthrough->infer(in, next);
    } else {
      kernels::Epilogue ep;
      ep.bias = step.bias.data();
      ep.bn = step.bn.has_value() ? &*step.bn : nullptr;
      ep.act = step.act;
      if (precision_ == Precision::kFloat32) {
        kernels::dense_forward(in, step.packed, ep, next);
      } else {
        kernels::quantized_forward(in, step.qpacked, ep, next);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

std::shared_ptr<const OptimizedNetwork> optimize_network(
    const nn::Sequential& net, OptimizedNetwork::Precision precision) {
  return std::make_shared<const OptimizedNetwork>(net, precision);
}

}  // namespace noble::serve
