// Scalar reference kernels. These loops ARE the numeric contract: plain
// k-ascending mul/add per output element (the historical linalg::gemm i-k-j
// order, zero-skip included), int32 dots for int8. Every other implementation
// must match them bit for bit.

#include <algorithm>
#include <cstring>
#include <vector>

#include "kernels/internal.h"

namespace noble::kernels::detail {

void dense_forward_scalar(const float* x, std::size_t m, std::size_t k,
                          std::size_t ldx, const float* w, std::size_t n,
                          bool accumulate, const Epilogue& ep, float* y,
                          std::size_t ldy) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    if (!accumulate) std::memset(yi, 0, n * sizeof(float));
    for (std::size_t p = 0; p < k; ++p) {
      const float a = xi[p];
      if (a == 0.0f) continue;  // sparse inputs (RSSI vectors) are common
      const float* wp = w + p * n;
      for (std::size_t j = 0; j < n; ++j) yi[j] += a * wp[j];
    }
    apply_epilogue_row(yi, n, ep);
  }
}

void dense_forward_packed_scalar(const float* x, std::size_t m, std::size_t ldx,
                                 const PackedDense& w, const Epilogue& ep,
                                 float* y, std::size_t ldy) {
  constexpr std::size_t T = PackedDense::kTile;
  const std::size_t k = w.in_dim(), n = w.out_dim();
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    for (std::size_t t = 0; t < w.num_panels(); ++t) {
      const float* panel = w.panel(t);
      float acc[T] = {0.0f};
      for (std::size_t p = 0; p < k; ++p) {
        const float a = xi[p];
        if (a == 0.0f) continue;
        const float* pk = panel + p * T;
        for (std::size_t c = 0; c < T; ++c) acc[c] += a * pk[c];
      }
      const std::size_t base = t * T;
      const std::size_t cols = std::min(T, n - base);
      for (std::size_t c = 0; c < cols; ++c) yi[base + c] = acc[c];
    }
    apply_epilogue_row(yi, n, ep);
  }
}

void quantized_forward_scalar(const float* x, std::size_t m, std::size_t k,
                              std::size_t ldx, const std::int8_t* w,
                              std::size_t wstride, const float* scales,
                              std::size_t n, const Epilogue& ep, float* y,
                              std::size_t ldy) {
  std::vector<std::int8_t> qrow(wstride);
  std::vector<std::int32_t> acc(n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    const float row_scale = quantize_row_int8(xi, k, wstride, qrow.data());
    for (std::size_t j = 0; j < n; ++j) {
      const std::int8_t* col = w + j * wstride;
      std::int32_t s = 0;
      for (std::size_t p = 0; p < k; ++p) {
        s += static_cast<std::int32_t>(qrow[p]) * static_cast<std::int32_t>(col[p]);
      }
      acc[j] = s;
    }
    dequantize_row(acc.data(), row_scale, scales, n, yi);
    apply_epilogue_row(yi, n, ep);
  }
}

}  // namespace noble::kernels::detail
