// Runtime dispatch and load-time weight packing.
//
// The active ISA is resolved once, on first use: the NOBLE_KERNEL env knob
// wins if set ("scalar" / "avx2" / "auto"), otherwise CPUID detection picks
// the widest implementation compiled into the binary. force_isa() (tests,
// benches) overrides the resolution at any point; an avx2 request on
// hardware without it clamps to scalar so dispatch can never select an
// implementation that would fault.

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/check.h"
#include "kernels/internal.h"
#include "kernels/kernels.h"

namespace noble::kernels {

namespace {

std::atomic<std::uint64_t> g_pack_ops{0};

// -1: no override (use startup resolution); otherwise static_cast<int>(Isa).
std::atomic<int> g_override{-1};

Isa clamp_to_hardware(Isa isa) {
  return isa == Isa::kAvx2 && !avx2_supported() ? Isa::kScalar : isa;
}

Isa resolve_startup() {
  if (const char* env = std::getenv("NOBLE_KERNEL")) {
    if (const auto parsed = parse_isa(env)) return clamp_to_hardware(*parsed);
  }
  return avx2_supported() ? Isa::kAvx2 : Isa::kScalar;
}

Isa startup_isa() {
  static const Isa isa = resolve_startup();
  return isa;
}

}  // namespace

bool avx2_supported() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return avx2_compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Isa active_isa() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  return startup_isa();
}

const char* isa_name(Isa isa) { return isa == Isa::kAvx2 ? "avx2" : "scalar"; }

void force_isa(std::optional<Isa> isa) {
  g_override.store(isa ? static_cast<int>(clamp_to_hardware(*isa)) : -1,
                   std::memory_order_relaxed);
}

std::optional<Isa> parse_isa(std::string_view value) {
  if (value == "scalar") return Isa::kScalar;
  if (value == "avx2") return Isa::kAvx2;
  return std::nullopt;  // "auto", "", or anything unrecognized: detect
}

void apply_env_override() {
  const char* env = std::getenv("NOBLE_KERNEL");
  if (env == nullptr) return;
  if (const auto parsed = parse_isa(env)) {
    force_isa(*parsed);
  } else {
    force_isa(std::nullopt);
  }
}

std::uint64_t pack_operations() {
  return g_pack_ops.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Load-time packing (pure storage permutation — ISA-independent).
// ---------------------------------------------------------------------------

PackedDense pack_dense(const linalg::Mat& w) {
  constexpr std::size_t T = PackedDense::kTile;
  PackedDense p;
  p.in_dim_ = w.rows();
  p.out_dim_ = w.cols();
  p.padded_out_ = (w.cols() + T - 1) / T * T;
  p.data_.assign(p.in_dim_ * p.padded_out_, 0.0f);
  for (std::size_t t = 0; t * T < p.out_dim_; ++t) {
    float* panel = p.data_.data() + t * p.in_dim_ * T;
    const std::size_t base = t * T;
    const std::size_t cols = std::min(T, p.out_dim_ - base);
    for (std::size_t k = 0; k < p.in_dim_; ++k) {
      const float* wk = w.row(k);
      for (std::size_t c = 0; c < cols; ++c) panel[k * T + c] = wk[base + c];
    }
  }
  g_pack_ops.fetch_add(1, std::memory_order_relaxed);
  return p;
}

PackedQuantized pack_quantized(const QuantizedView& w) {
  NOBLE_EXPECTS(w.weights != nullptr && w.scales != nullptr);
  constexpr std::size_t A = PackedQuantized::kKAlign;
  PackedQuantized p;
  p.in_dim_ = w.in_dim;
  p.out_dim_ = w.out_dim;
  p.padded_in_ = (w.in_dim + A - 1) / A * A;
  p.data_.assign(p.out_dim_ * p.padded_in_, 0);
  p.scales_.assign(w.scales, w.scales + w.out_dim);
  for (std::size_t j = 0; j < p.out_dim_; ++j) {
    std::memcpy(p.data_.data() + j * p.padded_in_, w.weights + j * w.in_dim,
                w.in_dim);
  }
  g_pack_ops.fetch_add(1, std::memory_order_relaxed);
  return p;
}

// ---------------------------------------------------------------------------
// Dispatched entry points.
// ---------------------------------------------------------------------------

void dense_forward(const linalg::Mat& x, const float* w, std::size_t in_dim,
                   std::size_t out_dim, const Epilogue& ep, linalg::Mat& y) {
  NOBLE_EXPECTS(x.cols() == in_dim);
  y.resize(x.rows(), out_dim);
  if (active_isa() == Isa::kAvx2) {
    detail::dense_forward_avx2(x.data(), x.rows(), in_dim, x.cols(), w, out_dim,
                               /*accumulate=*/false, ep, y.data(), y.cols());
  } else {
    detail::dense_forward_scalar(x.data(), x.rows(), in_dim, x.cols(), w,
                                 out_dim, /*accumulate=*/false, ep, y.data(),
                                 y.cols());
  }
}

void dense_forward(const linalg::Mat& x, const PackedDense& w,
                   const Epilogue& ep, linalg::Mat& y) {
  NOBLE_EXPECTS(x.cols() == w.in_dim());
  y.resize(x.rows(), w.out_dim());
  if (active_isa() == Isa::kAvx2) {
    detail::dense_forward_packed_avx2(x.data(), x.rows(), x.cols(), w, ep,
                                      y.data(), y.cols());
  } else {
    detail::dense_forward_packed_scalar(x.data(), x.rows(), x.cols(), w, ep,
                                        y.data(), y.cols());
  }
}

void gemm(const linalg::Mat& a, const linalg::Mat& b, linalg::Mat& c,
          bool accumulate) {
  NOBLE_EXPECTS(a.cols() == b.rows());
  if (!accumulate) c.resize(a.rows(), b.cols());
  NOBLE_EXPECTS(c.rows() == a.rows() && c.cols() == b.cols());
  const Epilogue ep;
  if (active_isa() == Isa::kAvx2) {
    detail::dense_forward_avx2(a.data(), a.rows(), a.cols(), a.cols(), b.data(),
                               b.cols(), accumulate, ep, c.data(), c.cols());
  } else {
    detail::dense_forward_scalar(a.data(), a.rows(), a.cols(), a.cols(),
                                 b.data(), b.cols(), accumulate, ep, c.data(),
                                 c.cols());
  }
}

void quantized_forward(const linalg::Mat& x, const QuantizedView& w,
                       const Epilogue& ep, linalg::Mat& y) {
  NOBLE_EXPECTS(x.cols() == w.in_dim);
  y.resize(x.rows(), w.out_dim);
  if (active_isa() == Isa::kAvx2) {
    detail::quantized_forward_avx2(x.data(), x.rows(), w.in_dim, x.cols(),
                                   w.weights, w.in_dim, w.scales, w.out_dim, ep,
                                   y.data(), y.cols());
  } else {
    detail::quantized_forward_scalar(x.data(), x.rows(), w.in_dim, x.cols(),
                                     w.weights, w.in_dim, w.scales, w.out_dim,
                                     ep, y.data(), y.cols());
  }
}

void quantized_forward(const linalg::Mat& x, const PackedQuantized& w,
                       const Epilogue& ep, linalg::Mat& y) {
  NOBLE_EXPECTS(x.cols() == w.in_dim());
  y.resize(x.rows(), w.out_dim());
  if (active_isa() == Isa::kAvx2) {
    detail::quantized_forward_avx2(x.data(), x.rows(), w.in_dim(), x.cols(),
                                   w.column(0), w.padded_in(), w.scales(),
                                   w.out_dim(), ep, y.data(), y.cols());
  } else {
    detail::quantized_forward_scalar(x.data(), x.rows(), w.in_dim(), x.cols(),
                                     w.column(0), w.padded_in(), w.scales(),
                                     w.out_dim(), ep, y.data(), y.cols());
  }
}

}  // namespace noble::kernels
