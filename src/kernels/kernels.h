// noble::kernels — the runtime-dispatched compute layer under every backend.
//
// Every forward pass in the stack (training-time Dense::infer, the serving
// localizers, the engine's dense and quantized replicas) bottoms out in the
// same two primitives: an fp32 GEMM/GEMV with a fused bias + batch-norm +
// activation epilogue, and an int8 quantized GEMM with per-output-channel
// weight scales and per-row dynamic activation scales. This module owns both,
// in two interchangeable implementations:
//
//   scalar   the reference — plain k-ascending mul/add loops, the numeric
//            contract every other implementation must hit bit-for-bit
//   avx2     8-wide vectorized across the *output* dimension, selected at
//            runtime when the CPU supports it
//
// The bit-identity contract. A kernel's result may depend on neither the ISA
// it ran on nor the batch it was part of:
//   - accumulation over k is strictly ascending per output element; AVX2
//     vectorizes across independent output columns, so each element's
//     addition order is exactly the scalar order;
//   - multiply and add stay separate operations (no FMA contraction — the
//     AVX2 translation unit is compiled without -mfma, and the whole library
//     pins -ffp-contract=off), so each op rounds exactly like the scalar op;
//   - epilogues (bias, folded batch-norm, activation) and int8 row
//     quantization/dequantization run through shared helpers compiled once,
//     so both ISAs execute literally the same code for them;
//   - integer accumulation (int8 GEMM) is exact, so vector order is free.
// Rows are processed independently, which keeps every kernel batch-invariant:
// a query's output does not depend on what else was coalesced into its batch.
//
// Weight pre-packing. `PackedDense` / `PackedQuantized` re-lay weights into
// tile-friendly blocked form once at load time (column panels the width of
// the SIMD tile, contiguous over k), so the serving hot loop walks memory
// linearly. Packing only permutes storage — packed and unpacked kernels are
// bit-identical by the ordering contract above.
//
// Dispatch is resolved once at startup from CPUID, overridable with the
// NOBLE_KERNEL=scalar|avx2|auto environment knob or force_isa() (tests,
// benches). Requesting avx2 on hardware without it falls back to scalar.
#ifndef NOBLE_KERNELS_KERNELS_H_
#define NOBLE_KERNELS_KERNELS_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "linalg/matrix.h"

namespace noble::kernels {

// ---------------------------------------------------------------------------
// Dispatch control.
// ---------------------------------------------------------------------------

/// Instruction-set implementations a kernel call can dispatch to.
enum class Isa : int {
  kScalar = 0,  ///< reference implementation; defines the numeric contract
  kAvx2 = 1,    ///< AVX2 (x86), bit-identical to scalar by construction
};

/// True when the AVX2 implementation was compiled into this binary.
bool avx2_compiled();
/// True when the AVX2 implementation is compiled in AND the CPU supports it.
bool avx2_supported();

/// The ISA kernel calls dispatch to: a force_isa() override if set, else the
/// startup resolution (NOBLE_KERNEL env knob, else CPUID detection).
Isa active_isa();

/// Human-readable ISA name ("scalar" / "avx2").
const char* isa_name(Isa isa);

/// Test/bench override: force dispatch to `isa` (clamped to scalar when the
/// request cannot run here), or nullopt to restore startup resolution.
void force_isa(std::optional<Isa> isa);

/// Parses a NOBLE_KERNEL value: "scalar", "avx2", or "auto"/"" (nullopt =
/// detect). Unrecognized strings behave like "auto".
std::optional<Isa> parse_isa(std::string_view value);

/// Re-reads NOBLE_KERNEL and applies it as if at startup (bench entry points
/// call this so the knob is honored even after dispatch was first resolved).
void apply_env_override();

/// Count of weight-packing operations performed process-wide — the test hook
/// for the "replicas share packed weights, clones never re-pack" contract.
std::uint64_t pack_operations();

// ---------------------------------------------------------------------------
// Fused epilogues.
// ---------------------------------------------------------------------------

/// Activation fused after the GEMM (exact same scalar code both ISAs).
enum class Activation : std::uint8_t { kNone, kTanh, kRelu, kSigmoid };

/// Batch-norm folded to a per-channel affine epilogue. Applied as
///   y = ((gamma * (v - mean)) * inv_std) + beta
/// which is the *exact* fp32 expression BatchNorm1d::infer evaluates
/// (inv_std = 1/sqrt(running_var + eps) precomputed per channel — the same
/// float value the layer recomputes per element). Folding the scale into the
/// weight matrix instead would change fp32 associativity and break
/// bit-identity; this form is tolerance-zero by construction.
struct BnFold {
  std::vector<float> gamma;
  std::vector<float> mean;
  std::vector<float> inv_std;
  std::vector<float> beta;
};

/// Elementwise tail fused after accumulation, applied in order:
/// bias add, folded batch-norm, activation. All pointers are borrowed.
struct Epilogue {
  const float* bias = nullptr;  ///< length out_dim; nullptr = no bias
  const BnFold* bn = nullptr;   ///< nullptr = no folded batch-norm
  Activation act = Activation::kNone;
};

// ---------------------------------------------------------------------------
// Pre-packed weights (load-time re-layout; storage permutation only).
// ---------------------------------------------------------------------------

/// fp32 weights re-laid into column panels of kTile outputs, contiguous over
/// k, zero-padded to the tile width: the layout the register-tiled kernels
/// stream linearly.
class PackedDense {
 public:
  static constexpr std::size_t kTile = 16;

  PackedDense() = default;

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  std::size_t padded_out() const { return padded_out_; }
  std::size_t num_panels() const { return padded_out_ / kTile; }
  /// Panel base: element (k, c) of panel t lives at panel(t)[k * kTile + c]
  /// and holds weight column t * kTile + c.
  const float* panel(std::size_t t) const { return data_.data() + t * in_dim_ * kTile; }
  std::size_t bytes() const { return data_.size() * sizeof(float); }
  bool empty() const { return data_.empty(); }

 private:
  friend PackedDense pack_dense(const linalg::Mat& w);
  std::size_t in_dim_ = 0, out_dim_ = 0, padded_out_ = 0;
  std::vector<float> data_;
};

/// Packs a row-major (in_dim x out_dim) weight matrix once at load time.
PackedDense pack_dense(const linalg::Mat& w);

/// Borrowed view of unpacked int8 dense weights: column-major (one panel of
/// in_dim weights per output channel) with per-output-channel scales — the
/// storage layout core::QuantizedDense already uses.
struct QuantizedView {
  const std::int8_t* weights = nullptr;  ///< out_dim panels of in_dim
  const float* scales = nullptr;         ///< per-output-channel dequant scale
  std::size_t in_dim = 0;
  std::size_t out_dim = 0;
};

/// int8 weights re-laid with each column panel zero-padded to a multiple of
/// kKAlign so the 16-lane integer dot loop needs no tail handling. Owns its
/// storage (scales included) — the immutable pre-packed weight set replicas
/// share via shared_ptr.
class PackedQuantized {
 public:
  static constexpr std::size_t kKAlign = 16;

  PackedQuantized() = default;

  std::size_t in_dim() const { return in_dim_; }
  std::size_t out_dim() const { return out_dim_; }
  std::size_t padded_in() const { return padded_in_; }
  const std::int8_t* column(std::size_t j) const {
    return data_.data() + j * padded_in_;
  }
  const float* scales() const { return scales_.data(); }
  std::size_t bytes() const {
    return data_.size() * sizeof(std::int8_t) + scales_.size() * sizeof(float);
  }
  bool empty() const { return data_.empty(); }

 private:
  friend PackedQuantized pack_quantized(const QuantizedView& w);
  std::size_t in_dim_ = 0, out_dim_ = 0, padded_in_ = 0;
  std::vector<std::int8_t> data_;
  std::vector<float> scales_;
};

/// Packs unpacked int8 weights once at load time.
PackedQuantized pack_quantized(const QuantizedView& w);

// ---------------------------------------------------------------------------
// Dispatched kernels. All are deterministic, batch-invariant, and
// bit-identical across ISAs and across packed/unpacked layouts.
// ---------------------------------------------------------------------------

/// y = x * W (+ epilogue) over unpacked row-major weights (in_dim x out_dim).
/// x is (m x in_dim); y is resized to (m x out_dim). x and y must not alias.
/// The training-time Dense::infer entry point; m == 1 is the GEMV case.
void dense_forward(const linalg::Mat& x, const float* w, std::size_t in_dim,
                   std::size_t out_dim, const Epilogue& ep, linalg::Mat& y);

/// Same contract over pre-packed weights — the serving hot path.
void dense_forward(const linalg::Mat& x, const PackedDense& w, const Epilogue& ep,
                   linalg::Mat& y);

/// Raw fp32 GEMM: C = A * B (accumulate=false, C resized) or C += A * B
/// (accumulate=true, C must already be A.rows x B.cols). The linalg::gemm /
/// gemm_acc backing — same zero-skip, k-ascending semantics those always had.
void gemm(const linalg::Mat& a, const linalg::Mat& b, linalg::Mat& c,
          bool accumulate);

/// int8 quantized forward with per-row dynamic activation scales: each input
/// row is quantized to int8 by its own max-abs, accumulated in int32 against
/// the int8 weights, dequantized per output channel, then the epilogue runs.
/// Rows are independent — deterministic and batch-invariant.
void quantized_forward(const linalg::Mat& x, const QuantizedView& w,
                       const Epilogue& ep, linalg::Mat& y);

/// Same contract over pre-packed int8 weights.
void quantized_forward(const linalg::Mat& x, const PackedQuantized& w,
                       const Epilogue& ep, linalg::Mat& y);

}  // namespace noble::kernels

#endif  // NOBLE_KERNELS_KERNELS_H_
