// Shared numeric tails — compiled exactly once so every ISA path executes
// the same machine code for everything outside the GEMM inner loop. This is
// half of the bit-identity contract; the other half is the accumulation-order
// discipline inside the per-ISA bodies.

#include <cmath>
#include <cstring>

#include "kernels/internal.h"

namespace noble::kernels::detail {

namespace {

/// Rounds to the nearest int8, clamped to the symmetric range [-127, 127] —
/// the exact core::quantize rounding (lround: half away from zero).
std::int8_t round_to_int8(float scaled) {
  const long r = std::lround(scaled);
  if (r > 127) return 127;
  if (r < -127) return -127;
  return static_cast<std::int8_t>(r);
}

}  // namespace

void apply_epilogue_row(float* y, std::size_t n, const Epilogue& ep) {
  if (ep.bias != nullptr) {
    for (std::size_t j = 0; j < n; ++j) y[j] += ep.bias[j];
  }
  if (ep.bn != nullptr) {
    // The exact BatchNorm1d::infer expression with 1/sqrt(var + eps)
    // precomputed per channel — same parse, same rounding, tolerance-zero.
    const BnFold& bn = *ep.bn;
    for (std::size_t j = 0; j < n; ++j) {
      y[j] = bn.gamma[j] * (y[j] - bn.mean[j]) * bn.inv_std[j] + bn.beta[j];
    }
  }
  switch (ep.act) {
    case Activation::kNone:
      break;
    case Activation::kTanh:
      for (std::size_t j = 0; j < n; ++j) y[j] = std::tanh(y[j]);
      break;
    case Activation::kRelu:
      for (std::size_t j = 0; j < n; ++j) y[j] = y[j] > 0.0f ? y[j] : 0.0f;
      break;
    case Activation::kSigmoid:
      for (std::size_t j = 0; j < n; ++j) y[j] = 1.0f / (1.0f + std::exp(-y[j]));
      break;
  }
}

float quantize_row_int8(const float* x, std::size_t k, std::size_t padded_k,
                        std::int8_t* q) {
  float max_abs = 0.0f;
  for (std::size_t p = 0; p < k; ++p) {
    const float a = std::fabs(x[p]);
    if (a > max_abs) max_abs = a;
  }
  if (padded_k > k) std::memset(q + k, 0, padded_k - k);
  if (max_abs == 0.0f) {
    std::memset(q, 0, k);
    return 0.0f;
  }
  const float inv_row_scale = 127.0f / max_abs;
  for (std::size_t p = 0; p < k; ++p) q[p] = round_to_int8(x[p] * inv_row_scale);
  return max_abs / 127.0f;
}

void dequantize_row(const std::int32_t* acc, float row_scale, const float* scales,
                    std::size_t n, float* y) {
  for (std::size_t j = 0; j < n; ++j) {
    y[j] = static_cast<float>(acc[j]) * (row_scale * scales[j]);
  }
}

}  // namespace noble::kernels::detail
