// AVX2 kernels. This translation unit alone is compiled with -mavx2 (and
// deliberately NOT -mfma: a fused multiply-add rounds once where the scalar
// reference rounds twice, which would break bit-identity — every step here is
// an explicit _mm256_mul_ps followed by _mm256_add_ps).
//
// Vectorization runs across the *output* dimension j: eight independent
// output elements per ymm register, each still accumulating its own k terms
// in strictly ascending order. That makes every output element's operation
// sequence identical to the scalar reference, so the results are bit-equal at
// every batch size. int8 dots accumulate in exact integer arithmetic, where
// order is free (epi8 -> epi16 widen, _mm256_madd_epi16 pairwise to int32).
//
// When the toolchain cannot build AVX2 (NOBLE_KERNELS_AVX2 undefined) the
// bodies collapse to aborting stubs; dispatch never selects them then.

#include "kernels/internal.h"

#if defined(NOBLE_KERNELS_AVX2)

#include <immintrin.h>

#include <cstring>
#include <vector>

namespace noble::kernels::detail {

namespace {

/// Horizontal sum of eight int32 lanes — exact, order-free.
inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

}  // namespace

void dense_forward_avx2(const float* x, std::size_t m, std::size_t k,
                        std::size_t ldx, const float* w, std::size_t n,
                        bool accumulate, const Epilogue& ep, float* y,
                        std::size_t ldy) {
  const std::size_t n16 = n & ~std::size_t{15};
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    for (std::size_t jb = 0; jb < n16; jb += 16) {
      __m256 acc0, acc1;
      if (accumulate) {
        acc0 = _mm256_loadu_ps(yi + jb);
        acc1 = _mm256_loadu_ps(yi + jb + 8);
      } else {
        acc0 = _mm256_setzero_ps();
        acc1 = _mm256_setzero_ps();
      }
      for (std::size_t p = 0; p < k; ++p) {
        const float a = xi[p];
        if (a == 0.0f) continue;  // same zero-skip as the scalar reference
        const __m256 va = _mm256_set1_ps(a);
        const float* wp = w + p * n + jb;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(wp)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(wp + 8)));
      }
      _mm256_storeu_ps(yi + jb, acc0);
      _mm256_storeu_ps(yi + jb + 8, acc1);
    }
    // Ragged n tail: per-element k-ascending mul/add, exactly the reference
    // order (-ffp-contract=off keeps the compiler from fusing these).
    for (std::size_t j = n16; j < n; ++j) {
      float s = accumulate ? yi[j] : 0.0f;
      for (std::size_t p = 0; p < k; ++p) {
        const float a = xi[p];
        if (a == 0.0f) continue;
        s += a * w[p * n + j];
      }
      yi[j] = s;
    }
    apply_epilogue_row(yi, n, ep);
  }
}

void dense_forward_packed_avx2(const float* x, std::size_t m, std::size_t ldx,
                               const PackedDense& w, const Epilogue& ep,
                               float* y, std::size_t ldy) {
  constexpr std::size_t T = PackedDense::kTile;
  const std::size_t k = w.in_dim(), n = w.out_dim();
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    for (std::size_t t = 0; t < w.num_panels(); ++t) {
      const float* panel = w.panel(t);
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const float a = xi[p];
        if (a == 0.0f) continue;
        const __m256 va = _mm256_set1_ps(a);
        const float* pk = panel + p * T;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(pk)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(pk + 8)));
      }
      const std::size_t base = t * T;
      if (n - base >= T) {
        _mm256_storeu_ps(yi + base, acc0);
        _mm256_storeu_ps(yi + base + 8, acc1);
      } else {  // ragged final panel: spill the tile, copy the live columns
        alignas(32) float tmp[T];
        _mm256_store_ps(tmp, acc0);
        _mm256_store_ps(tmp + 8, acc1);
        std::memcpy(yi + base, tmp, (n - base) * sizeof(float));
      }
    }
    apply_epilogue_row(yi, n, ep);
  }
}

void quantized_forward_avx2(const float* x, std::size_t m, std::size_t k,
                            std::size_t ldx, const std::int8_t* w,
                            std::size_t wstride, const float* scales,
                            std::size_t n, const Epilogue& ep, float* y,
                            std::size_t ldy) {
  std::vector<std::int8_t> qrow(wstride);
  std::vector<std::int32_t> acc(n);
  // Packed weights (wstride % 16 == 0) have zero pad lanes on both sides, so
  // the 16-lane loop covers the whole column; unpacked ragged k falls back to
  // a scalar integer tail. Either way the sum is exact, so the loop structure
  // below is free to widen the activation row once and block over columns —
  // int32 addition is associative, unlike the fp32 path above.
  const std::size_t kv = wstride % 16 == 0 ? wstride : k & ~std::size_t{15};
  std::vector<std::int16_t> q16(kv);
  for (std::size_t i = 0; i < m; ++i) {
    const float* xi = x + i * ldx;
    float* yi = y + i * ldy;
    const float row_scale = quantize_row_int8(xi, k, wstride, qrow.data());
    // Widen the quantized row to int16 once; every column's madd reuses it
    // instead of re-converting per column.
    for (std::size_t p = 0; p < kv; p += 16) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(q16.data() + p),
          _mm256_cvtepi8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(qrow.data() + p))));
    }
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {  // 4-column block: one row load feeds 4 madds
      const std::int8_t* c0 = w + (j + 0) * wstride;
      const std::int8_t* c1 = w + (j + 1) * wstride;
      const std::int8_t* c2 = w + (j + 2) * wstride;
      const std::int8_t* c3 = w + (j + 3) * wstride;
      __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
      __m256i a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
      for (std::size_t p = 0; p < kv; p += 16) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(q16.data() + p));
        a0 = _mm256_add_epi32(
            a0, _mm256_madd_epi16(va, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(c0 + p)))));
        a1 = _mm256_add_epi32(
            a1, _mm256_madd_epi16(va, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(c1 + p)))));
        a2 = _mm256_add_epi32(
            a2, _mm256_madd_epi16(va, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(c2 + p)))));
        a3 = _mm256_add_epi32(
            a3, _mm256_madd_epi16(va, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                    reinterpret_cast<const __m128i*>(c3 + p)))));
      }
      std::int32_t s0 = hsum_epi32(a0), s1 = hsum_epi32(a1);
      std::int32_t s2 = hsum_epi32(a2), s3 = hsum_epi32(a3);
      for (std::size_t p = kv; p < k; ++p) {
        const std::int32_t qa = qrow[p];
        s0 += qa * static_cast<std::int32_t>(c0[p]);
        s1 += qa * static_cast<std::int32_t>(c1[p]);
        s2 += qa * static_cast<std::int32_t>(c2[p]);
        s3 += qa * static_cast<std::int32_t>(c3[p]);
      }
      acc[j + 0] = s0;
      acc[j + 1] = s1;
      acc[j + 2] = s2;
      acc[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const std::int8_t* col = w + j * wstride;
      __m256i vacc = _mm256_setzero_si256();
      for (std::size_t p = 0; p < kv; p += 16) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(q16.data() + p));
        const __m256i vb = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + p)));
        vacc = _mm256_add_epi32(vacc, _mm256_madd_epi16(va, vb));
      }
      std::int32_t s = hsum_epi32(vacc);
      for (std::size_t p = kv; p < k; ++p) {
        s += static_cast<std::int32_t>(qrow[p]) * static_cast<std::int32_t>(col[p]);
      }
      acc[j] = s;
    }
    dequantize_row(acc.data(), row_scale, scales, n, yi);
    apply_epilogue_row(yi, n, ep);
  }
}

}  // namespace noble::kernels::detail

namespace noble::kernels {
bool avx2_compiled() { return true; }
}  // namespace noble::kernels

#else  // !NOBLE_KERNELS_AVX2

#include <cstdlib>

namespace noble::kernels::detail {

// Dispatch guarantees these are unreachable when AVX2 wasn't compiled.
void dense_forward_avx2(const float*, std::size_t, std::size_t, std::size_t,
                        const float*, std::size_t, bool, const Epilogue&,
                        float*, std::size_t) {
  std::abort();
}
void dense_forward_packed_avx2(const float*, std::size_t, std::size_t,
                               const PackedDense&, const Epilogue&, float*,
                               std::size_t) {
  std::abort();
}
void quantized_forward_avx2(const float*, std::size_t, std::size_t, std::size_t,
                            const std::int8_t*, std::size_t, const float*,
                            std::size_t, const Epilogue&, float*, std::size_t) {
  std::abort();
}

}  // namespace noble::kernels::detail

namespace noble::kernels {
bool avx2_compiled() { return false; }
}  // namespace noble::kernels

#endif  // NOBLE_KERNELS_AVX2
