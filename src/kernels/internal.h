// Implementation-side seams of noble::kernels.
//
// The per-ISA GEMM bodies live in their own translation units (scalar.cpp,
// avx2.cpp — the latter compiled with -mavx2); everything that must round
// identically on every path — epilogues, int8 row quantization, dequant —
// lives in epilogue.cpp, compiled exactly once, so both ISAs call literally
// the same machine code for the non-GEMM work.
#ifndef NOBLE_KERNELS_INTERNAL_H_
#define NOBLE_KERNELS_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "kernels/kernels.h"

namespace noble::kernels::detail {

// --- shared, compiled-once numeric helpers (epilogue.cpp) ------------------

/// Applies bias add, folded batch-norm, then activation to one output row.
void apply_epilogue_row(float* y, std::size_t n, const Epilogue& ep);

/// Quantizes one input row to int8 by its own max-abs (symmetric, round
/// half-away-from-zero via lround — kept scalar on purpose: SSE rounding is
/// half-to-even and would diverge). Zero rows quantize to all-zero with a
/// returned row scale of 0. Lanes [k, padded_k) are zero-filled so padded
/// integer dots are exact. Returns the row's dequantization scale.
float quantize_row_int8(const float* x, std::size_t k, std::size_t padded_k,
                        std::int8_t* q);

/// Dequantizes one row of int32 accumulators: y[j] = acc[j] * (row_scale *
/// scales[j]) — the historical quantized_dense_infer expression, bias left
/// to the epilogue.
void dequantize_row(const std::int32_t* acc, float row_scale, const float* scales,
                    std::size_t n, float* y);

// --- per-ISA GEMM bodies ---------------------------------------------------
// Rows of x/y are addressed with explicit leading dimensions (ldx/ldy) so the
// bodies are layout-agnostic. `accumulate` seeds each output element from y
// instead of zero (the linalg::gemm_acc contract); the epilogue runs either
// way (pass a default Epilogue for none).

void dense_forward_scalar(const float* x, std::size_t m, std::size_t k,
                          std::size_t ldx, const float* w, std::size_t n,
                          bool accumulate, const Epilogue& ep, float* y,
                          std::size_t ldy);
void dense_forward_packed_scalar(const float* x, std::size_t m, std::size_t ldx,
                                 const PackedDense& w, const Epilogue& ep,
                                 float* y, std::size_t ldy);
/// wstride is the stride between weight columns (== k unpacked, padded_in
/// packed; always >= k, pad lanes zero).
void quantized_forward_scalar(const float* x, std::size_t m, std::size_t k,
                              std::size_t ldx, const std::int8_t* w,
                              std::size_t wstride, const float* scales,
                              std::size_t n, const Epilogue& ep, float* y,
                              std::size_t ldy);

// AVX2 twins; stubs that abort when NOBLE_KERNELS_AVX2 was not compiled
// (dispatch never selects them in that build).
void dense_forward_avx2(const float* x, std::size_t m, std::size_t k,
                        std::size_t ldx, const float* w, std::size_t n,
                        bool accumulate, const Epilogue& ep, float* y,
                        std::size_t ldy);
void dense_forward_packed_avx2(const float* x, std::size_t m, std::size_t ldx,
                               const PackedDense& w, const Epilogue& ep,
                               float* y, std::size_t ldy);
void quantized_forward_avx2(const float* x, std::size_t m, std::size_t k,
                            std::size_t ldx, const std::int8_t* w,
                            std::size_t wstride, const float* scales,
                            std::size_t n, const Epilogue& ep, float* y,
                            std::size_t ldy);

}  // namespace noble::kernels::detail

#endif  // NOBLE_KERNELS_INTERNAL_H_
