// Output-space quantization (§III-B): continuous (x, y) coordinates are
// mapped to non-overlapping square grid cells of side tau; only cells that
// contain training data become classes ("neighbor-oblivious" pruning of
// inaccessible space). Inference maps a predicted class back to its cell's
// central coordinates.
#ifndef NOBLE_GEO_GRID_H_
#define NOBLE_GEO_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace noble::geo {

/// Complete fitted state of a GridQuantizer in exportable form — the grid
/// anchor plus one (cell index, data centroid) entry per class. Cell centers
/// and the cell->class map are derived, so this is the minimal state a model
/// artifact must ship (serve/artifact.h).
struct GridQuantizerState {
  double tau = 0.0;
  double origin_x = 0.0, origin_y = 0.0;
  std::vector<std::int32_t> cell_ix, cell_iy;  ///< per class id.
  std::vector<Point2> data_centroid;           ///< per class id.
};

/// Quantizes 2-D space into occupied square cells, assigning dense class ids.
class GridQuantizer {
 public:
  GridQuantizer() = default;

  /// Builds the class map from training positions. `tau` is the cell side in
  /// meters; `origin` anchors the grid (defaults to the data's min corner
  /// snapped outward by one cell).
  void fit(const std::vector<Point2>& positions, double tau);

  /// Snapshot of the fitted state (model artifact export).
  GridQuantizerState export_state() const;

  /// Rebuilds a fitted quantizer from an exported snapshot. The state must
  /// be internally consistent (tau > 0, aligned per-class vectors, at least
  /// one class, no duplicate cells).
  void restore_state(const GridQuantizerState& state);

  /// Cell side length.
  double tau() const { return tau_; }

  /// Number of occupied classes (empty cells were discarded).
  std::size_t num_classes() const { return centers_.size(); }

  /// Class id of the cell containing p, or -1 if that cell held no
  /// training data (possible for out-of-distribution queries).
  int class_of(const Point2& p) const;

  /// Class id of the nearest occupied cell to p (always valid after fit).
  int nearest_class(const Point2& p) const;

  /// Geometric center of the class's cell — the paper's inference lookup.
  Point2 center(int class_id) const;

  /// Mean of the training points that fell in the cell (an alternative
  /// decode; slightly tighter than the geometric center).
  Point2 data_centroid(int class_id) const;

  /// Class ids of occupied cells within `ring` Chebyshev steps of the cell
  /// containing p (excluding p's own class). Used for adjacency multi-hot
  /// labels (§III-B's remedy for class sparsity).
  std::vector<int> neighbor_classes(const Point2& p, int ring = 1) const;

  /// Quantization residual: distance from p to its cell center.
  double residual(const Point2& p) const;

 private:
  using CellKey = std::int64_t;
  CellKey key_of(const Point2& p) const;
  CellKey key_of_cell(std::int32_t ix, std::int32_t iy) const;

  double tau_ = 0.0;
  double origin_x_ = 0.0, origin_y_ = 0.0;
  std::unordered_map<CellKey, int> class_by_cell_;
  std::vector<Point2> centers_;        // class id -> cell center
  std::vector<Point2> data_centroid_;  // class id -> mean of member points
  std::vector<std::int32_t> cell_ix_, cell_iy_;
};

/// Two nested quantizers at side tau (fine classes c) and side l > tau
/// (coarse classes r) — the paper's multi-granularity output (§III-B).
class MultiResolutionQuantizer {
 public:
  MultiResolutionQuantizer() = default;

  /// Fits both levels on the same training positions. Requires l > tau.
  void fit(const std::vector<Point2>& positions, double tau, double l);

  const GridQuantizer& fine() const { return fine_; }
  const GridQuantizer& coarse() const { return coarse_; }

 private:
  GridQuantizer fine_;
  GridQuantizer coarse_;
};

}  // namespace noble::geo

#endif  // NOBLE_GEO_GRID_H_
