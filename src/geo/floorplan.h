// Buildings and campus floor plans: the structural prior NObLe exploits.
//
// A building has a footprint polygon, optional inaccessible holes (courtyards
// like the UJI top-left building of Fig. 1, shafts, walls) and a stack of
// floors sharing that footprint. A FloorPlan is a set of buildings; the
// accessible set is the union of footprints minus holes. The Deep Regression
// Projection baseline ([8]) projects arbitrary predictions onto this set.
#ifndef NOBLE_GEO_FLOORPLAN_H_
#define NOBLE_GEO_FLOORPLAN_H_

#include <string>
#include <vector>

#include "geo/polygon.h"

namespace noble::geo {

/// One building: footprint, inaccessible holes, floor stack.
class Building {
 public:
  /// `id` must be the index of this building in its FloorPlan.
  Building(int id, std::string name, Polygon footprint, int num_floors,
           double floor_height = 3.0);

  /// Adds an inaccessible hole fully inside the footprint (courtyard, core).
  void add_hole(Polygon hole);

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  int num_floors() const { return num_floors_; }
  double floor_height() const { return floor_height_; }
  const Polygon& footprint() const { return footprint_; }
  const std::vector<Polygon>& holes() const { return holes_; }

  /// True if p is inside the footprint and outside every hole.
  bool accessible(const Point2& p) const;

  /// Nearest accessible point to p within this building (boundary-projected
  /// and nudged inside).
  Point2 project_inside(const Point2& p) const;

 private:
  int id_;
  std::string name_;
  Polygon footprint_;
  std::vector<Polygon> holes_;
  int num_floors_;
  double floor_height_;
};

/// A campus: several buildings in a shared metric frame.
class FloorPlan {
 public:
  FloorPlan() = default;

  /// Adds a building; its id must equal the current building count.
  void add_building(Building b);

  const std::vector<Building>& buildings() const { return buildings_; }
  std::size_t building_count() const { return buildings_.size(); }
  const Building& building(std::size_t i) const { return buildings_.at(i); }

  /// True if p lies in some building's accessible region.
  bool accessible(const Point2& p) const;

  /// Index of the building containing p, or -1.
  int building_at(const Point2& p) const;

  /// Nearest accessible point across all buildings — the map-projection
  /// operation of the Regression Projection baseline.
  Point2 project_to_accessible(const Point2& p) const;

  /// Bounding box of all footprints.
  Aabb bounds() const;

 private:
  std::vector<Building> buildings_;
};

}  // namespace noble::geo

#endif  // NOBLE_GEO_FLOORPLAN_H_
