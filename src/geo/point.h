// 2-D point/vector primitives used across maps, simulators and models.
#ifndef NOBLE_GEO_POINT_H_
#define NOBLE_GEO_POINT_H_

#include <cmath>

namespace noble::geo {

/// Planar point (meters, campus-local coordinates; the paper's
/// longitude/latitude pairs are treated as a local metric frame).
struct Point2 {
  double x = 0.0;
  double y = 0.0;

  Point2 operator+(const Point2& o) const { return {x + o.x, y + o.y}; }
  Point2 operator-(const Point2& o) const { return {x - o.x, y - o.y}; }
  Point2 operator*(double s) const { return {x * s, y * s}; }
  bool operator==(const Point2& o) const = default;

  /// Euclidean norm.
  double norm() const { return std::hypot(x, y); }
  /// Dot product.
  double dot(const Point2& o) const { return x * o.x + y * o.y; }
};

/// Euclidean distance between two points — the paper's position error metric.
inline double distance(const Point2& a, const Point2& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Squared Euclidean distance.
inline double sq_distance(const Point2& a, const Point2& b) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Axis-aligned bounding box.
struct Aabb {
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;

  bool contains(const Point2& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  /// Grows the box to include p.
  void expand(const Point2& p) {
    if (p.x < min_x) min_x = p.x;
    if (p.x > max_x) max_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.y > max_y) max_y = p.y;
  }
};

}  // namespace noble::geo

#endif  // NOBLE_GEO_POINT_H_
