// Simple polygons: containment, boundary projection, area.
#ifndef NOBLE_GEO_POLYGON_H_
#define NOBLE_GEO_POLYGON_H_

#include <vector>

#include "geo/point.h"

namespace noble::geo {

/// Simple (non-self-intersecting) polygon with implicit closing edge.
class Polygon {
 public:
  Polygon() = default;
  /// Vertices in order (either winding). At least 3 required.
  explicit Polygon(std::vector<Point2> vertices);

  /// Axis-aligned rectangle helper.
  static Polygon rectangle(double min_x, double min_y, double max_x, double max_y);

  const std::vector<Point2>& vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }

  /// Even-odd (ray casting) point containment. Boundary points count inside.
  bool contains(const Point2& p) const;

  /// Closest point on the polygon boundary to p.
  Point2 nearest_boundary_point(const Point2& p) const;

  /// Distance from p to the boundary (0 if p lies on it).
  double boundary_distance(const Point2& p) const;

  /// Unsigned polygon area (shoelace).
  double area() const;

  /// Polygon centroid (area-weighted).
  Point2 centroid() const;

  /// Bounding box of the vertices.
  const Aabb& bounds() const { return bounds_; }

 private:
  std::vector<Point2> vertices_;
  Aabb bounds_;
};

/// Closest point to p on segment [a, b].
Point2 nearest_point_on_segment(const Point2& a, const Point2& b, const Point2& p);

}  // namespace noble::geo

#endif  // NOBLE_GEO_POLYGON_H_
