#include "geo/pathgraph.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "geo/polygon.h"

namespace noble::geo {

std::size_t PathGraph::add_node(Point2 p) {
  nodes_.push_back(p);
  adj_.emplace_back();
  return nodes_.size() - 1;
}

void PathGraph::add_edge(std::size_t a, std::size_t b) {
  NOBLE_EXPECTS(a < nodes_.size() && b < nodes_.size() && a != b);
  edges_.push_back({a, b});
  adj_[a].push_back(b);
  adj_[b].push_back(a);
}

std::vector<std::size_t> PathGraph::add_polyline(const std::vector<Point2>& pts) {
  NOBLE_EXPECTS(pts.size() >= 2);
  std::vector<std::size_t> ids;
  ids.reserve(pts.size());
  for (const auto& p : pts) ids.push_back(add_node(p));
  for (std::size_t i = 1; i < ids.size(); ++i) add_edge(ids[i - 1], ids[i]);
  return ids;
}

std::size_t PathGraph::nearest_node(const Point2& p) const {
  NOBLE_EXPECTS(!nodes_.empty());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const double d = sq_distance(nodes_[i], p);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

Point2 PathGraph::snap_to_path(const Point2& p) const {
  NOBLE_EXPECTS(!edges_.empty());
  Point2 best_pt = nodes_[edges_[0].a];
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : edges_) {
    const Point2 cand = nearest_point_on_segment(nodes_[e.a], nodes_[e.b], p);
    const double d = sq_distance(cand, p);
    if (d < best) {
      best = d;
      best_pt = cand;
    }
  }
  return best_pt;
}

double PathGraph::distance_to_path(const Point2& p) const {
  return distance(p, snap_to_path(p));
}

Point2 PathGraph::nearest_edge_direction(const Point2& p) const {
  NOBLE_EXPECTS(!edges_.empty());
  const Edge* best_edge = &edges_[0];
  double best = std::numeric_limits<double>::infinity();
  for (const auto& e : edges_) {
    const Point2 cand = nearest_point_on_segment(nodes_[e.a], nodes_[e.b], p);
    const double d = sq_distance(cand, p);
    if (d < best) {
      best = d;
      best_edge = &e;
    }
  }
  const Point2 dir = nodes_[best_edge->b] - nodes_[best_edge->a];
  const double len = dir.norm();
  return len > 1e-12 ? dir * (1.0 / len) : Point2{1.0, 0.0};
}

std::vector<std::size_t> PathGraph::random_walk(std::size_t start, std::size_t num_steps,
                                                Rng& rng) const {
  NOBLE_EXPECTS(start < nodes_.size());
  std::vector<std::size_t> walk{start};
  std::size_t prev = start;  // sentinel: equal to current on first step
  std::size_t cur = start;
  for (std::size_t s = 0; s < num_steps; ++s) {
    const auto& nb = adj_[cur];
    if (nb.empty()) break;
    // Prefer not walking straight back; fall back when at a dead end.
    std::vector<std::size_t> options;
    for (std::size_t cand : nb) {
      if (cand != prev) options.push_back(cand);
    }
    if (options.empty()) options.push_back(prev);
    const std::size_t next =
        options[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
    walk.push_back(next);
    prev = cur;
    cur = next;
  }
  return walk;
}

std::vector<Point2> PathGraph::sample_along_edges(double spacing) const {
  NOBLE_EXPECTS(spacing > 0.0);
  std::vector<Point2> out;
  for (const auto& e : edges_) {
    const Point2& a = nodes_[e.a];
    const Point2& b = nodes_[e.b];
    const double len = distance(a, b);
    const auto steps = static_cast<std::size_t>(std::floor(len / spacing));
    for (std::size_t i = 0; i <= steps; ++i) {
      const double t = (len < 1e-12) ? 0.0 : std::min(1.0, i * spacing / len);
      out.push_back(a + (b - a) * t);
    }
  }
  return out;
}

}  // namespace noble::geo
