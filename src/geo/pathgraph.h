// Walkable-path graph: corridors indoors, walkways outdoors.
//
// Used by (a) the simulators to place fingerprint samples / walking
// trajectories on realistic routes, and (b) the map-assisted baselines that
// snap estimates to the path network ([8]'s turn-correction heuristic).
#ifndef NOBLE_GEO_PATHGRAPH_H_
#define NOBLE_GEO_PATHGRAPH_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "geo/point.h"

namespace noble::geo {

/// Undirected graph of walkable segments.
class PathGraph {
 public:
  /// Adds a node and returns its index.
  std::size_t add_node(Point2 p);

  /// Connects nodes a and b with a straight walkable segment.
  void add_edge(std::size_t a, std::size_t b);

  /// Adds a polyline of nodes connected in sequence; returns node indices.
  std::vector<std::size_t> add_polyline(const std::vector<Point2>& pts);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t edge_count() const { return edges_.size(); }
  const Point2& node(std::size_t i) const { return nodes_.at(i); }
  const std::vector<std::size_t>& neighbors(std::size_t i) const { return adj_.at(i); }

  /// Index of the node nearest to p.
  std::size_t nearest_node(const Point2& p) const;

  /// Closest point to p lying on any edge segment (map snapping).
  Point2 snap_to_path(const Point2& p) const;

  /// Unit direction of the edge closest to p (sign arbitrary). Used by
  /// dead-reckoning trackers to re-anchor heading after a map snap.
  Point2 nearest_edge_direction(const Point2& p) const;

  /// Distance from p to the path network.
  double distance_to_path(const Point2& p) const;

  /// Random walk of `num_steps` node hops starting at `start`, avoiding
  /// immediate backtracking where possible. Returns the node sequence.
  std::vector<std::size_t> random_walk(std::size_t start, std::size_t num_steps,
                                       Rng& rng) const;

  /// Evenly spaced points along the edge polyline set, `spacing` meters apart
  /// (used to place Wi-Fi fingerprint collection locations on corridors).
  std::vector<Point2> sample_along_edges(double spacing) const;

 private:
  struct Edge {
    std::size_t a, b;
  };
  std::vector<Point2> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> adj_;
};

}  // namespace noble::geo

#endif  // NOBLE_GEO_PATHGRAPH_H_
