#include "geo/floorplan.h"

#include <limits>

#include "common/check.h"

namespace noble::geo {

Building::Building(int id, std::string name, Polygon footprint, int num_floors,
                   double floor_height)
    : id_(id),
      name_(std::move(name)),
      footprint_(std::move(footprint)),
      num_floors_(num_floors),
      floor_height_(floor_height) {
  NOBLE_EXPECTS(num_floors >= 1);
  NOBLE_EXPECTS(floor_height > 0.0);
}

void Building::add_hole(Polygon hole) { holes_.push_back(std::move(hole)); }

bool Building::accessible(const Point2& p) const {
  if (!footprint_.contains(p)) return false;
  for (const auto& hole : holes_) {
    // Points strictly inside a hole are inaccessible; treat the hole
    // boundary itself as accessible (walls have finite thickness).
    if (hole.contains(p) && hole.boundary_distance(p) > 1e-9) return false;
  }
  return true;
}

Point2 Building::project_inside(const Point2& p) const {
  if (accessible(p)) return p;
  // Candidate projections: footprint boundary and every hole boundary.
  Point2 best_pt = footprint_.nearest_boundary_point(p);
  double best = sq_distance(best_pt, p);
  for (const auto& hole : holes_) {
    const Point2 cand = hole.nearest_boundary_point(p);
    const double d = sq_distance(cand, p);
    if (d < best) {
      best = d;
      best_pt = cand;
    }
  }
  // Nudge toward the accessible side to escape numerical boundary issues.
  const Point2 inward = footprint_.centroid() - best_pt;
  const double len = inward.norm();
  if (len > 1e-12) {
    const Point2 nudged = best_pt + inward * (1e-6 / len);
    if (accessible(nudged)) return nudged;
  }
  return best_pt;
}

void FloorPlan::add_building(Building b) {
  NOBLE_EXPECTS(b.id() == static_cast<int>(buildings_.size()));
  buildings_.push_back(std::move(b));
}

bool FloorPlan::accessible(const Point2& p) const {
  for (const auto& b : buildings_) {
    if (b.accessible(p)) return true;
  }
  return false;
}

int FloorPlan::building_at(const Point2& p) const {
  for (const auto& b : buildings_) {
    if (b.accessible(p)) return b.id();
  }
  return -1;
}

Point2 FloorPlan::project_to_accessible(const Point2& p) const {
  NOBLE_EXPECTS(!buildings_.empty());
  if (accessible(p)) return p;
  double best = std::numeric_limits<double>::infinity();
  Point2 best_pt = p;
  for (const auto& b : buildings_) {
    const Point2 cand = b.project_inside(p);
    const double d = sq_distance(cand, p);
    if (d < best) {
      best = d;
      best_pt = cand;
    }
  }
  return best_pt;
}

Aabb FloorPlan::bounds() const {
  NOBLE_EXPECTS(!buildings_.empty());
  Aabb box = buildings_[0].footprint().bounds();
  for (const auto& b : buildings_) {
    const Aabb& bb = b.footprint().bounds();
    box.expand({bb.min_x, bb.min_y});
    box.expand({bb.max_x, bb.max_y});
  }
  return box;
}

}  // namespace noble::geo
