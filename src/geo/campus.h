// World builders: synthetic campuses with the structural properties of the
// paper's testbeds (see DESIGN.md substitution table).
//
//  * make_uji_like_campus(): three multi-floor buildings with inaccessible
//    courtyards in a 397 m x 273 m frame (UJIIndoorLoc, Fig. 1).
//  * make_ipin_like_building(): one small building (IPIN2016 Tutorial).
//  * make_outdoor_track(): a 160 m x 60 m walkway loop with reference points
//    (the paper's self-collected IMU campus walk, §V-A).
#ifndef NOBLE_GEO_CAMPUS_H_
#define NOBLE_GEO_CAMPUS_H_

#include "geo/floorplan.h"
#include "geo/pathgraph.h"

namespace noble::geo {

/// An indoor world: buildings plus per-(building, floor) corridor graphs that
/// fingerprint-collection routes follow.
struct IndoorWorld {
  struct Corridor {
    int building;
    int floor;
    PathGraph graph;
  };

  FloorPlan plan;
  std::vector<Corridor> corridors;

  /// All corridors belonging to one building/floor pair.
  const Corridor* corridor(int building, int floor) const;
};

/// An outdoor world: walkway graph, ordered reference points along it, and
/// the world bounds.
struct OutdoorWorld {
  PathGraph walkways;
  std::vector<Point2> reference_points;
  Aabb bounds;
};

/// Three-building campus (4 floors each) mimicking UJIIndoorLoc's structure:
/// elongated footprints, interior courtyards that hold no data, ring + cross
/// corridors per floor.
IndoorWorld make_uji_like_campus();

/// Single small building (3 floors) mimicking the IPIN2016 Tutorial setting.
IndoorWorld make_ipin_like_building();

/// Outdoor loop with `num_reference_points` GPS reference locations spread
/// along the walkways (paper: 177 references over 160 m x 60 m).
OutdoorWorld make_outdoor_track(std::size_t num_reference_points = 177);

}  // namespace noble::geo

#endif  // NOBLE_GEO_CAMPUS_H_
