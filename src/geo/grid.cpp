#include "geo/grid.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace noble::geo {

void GridQuantizer::fit(const std::vector<Point2>& positions, double tau) {
  NOBLE_EXPECTS(!positions.empty());
  NOBLE_EXPECTS(tau > 0.0);
  tau_ = tau;
  double min_x = positions[0].x, min_y = positions[0].y;
  for (const auto& p : positions) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
  }
  // Anchor one cell outside the data so index arithmetic stays positive.
  origin_x_ = min_x - tau;
  origin_y_ = min_y - tau;

  class_by_cell_.clear();
  centers_.clear();
  data_centroid_.clear();
  cell_ix_.clear();
  cell_iy_.clear();

  std::vector<std::size_t> member_count;
  for (const auto& p : positions) {
    const CellKey key = key_of(p);
    auto [it, inserted] = class_by_cell_.try_emplace(key, static_cast<int>(centers_.size()));
    if (inserted) {
      const auto ix = static_cast<std::int32_t>(std::floor((p.x - origin_x_) / tau_));
      const auto iy = static_cast<std::int32_t>(std::floor((p.y - origin_y_) / tau_));
      cell_ix_.push_back(ix);
      cell_iy_.push_back(iy);
      centers_.push_back({origin_x_ + (ix + 0.5) * tau_, origin_y_ + (iy + 0.5) * tau_});
      data_centroid_.push_back({0.0, 0.0});
      member_count.push_back(0);
    }
    const int cls = it->second;
    data_centroid_[static_cast<std::size_t>(cls)] =
        data_centroid_[static_cast<std::size_t>(cls)] + p;
    ++member_count[static_cast<std::size_t>(cls)];
  }
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    data_centroid_[c] =
        data_centroid_[c] * (1.0 / static_cast<double>(member_count[c]));
  }
  NOBLE_ENSURES(!centers_.empty());
}

GridQuantizerState GridQuantizer::export_state() const {
  NOBLE_EXPECTS(!centers_.empty());
  return {tau_, origin_x_, origin_y_, cell_ix_, cell_iy_, data_centroid_};
}

void GridQuantizer::restore_state(const GridQuantizerState& state) {
  NOBLE_EXPECTS(state.tau > 0.0);
  NOBLE_EXPECTS(!state.cell_ix.empty());
  NOBLE_EXPECTS(state.cell_ix.size() == state.cell_iy.size());
  NOBLE_EXPECTS(state.cell_ix.size() == state.data_centroid.size());
  tau_ = state.tau;
  origin_x_ = state.origin_x;
  origin_y_ = state.origin_y;
  cell_ix_ = state.cell_ix;
  cell_iy_ = state.cell_iy;
  data_centroid_ = state.data_centroid;
  centers_.clear();
  centers_.reserve(cell_ix_.size());
  class_by_cell_.clear();
  for (std::size_t c = 0; c < cell_ix_.size(); ++c) {
    centers_.push_back({origin_x_ + (cell_ix_[c] + 0.5) * tau_,
                        origin_y_ + (cell_iy_[c] + 0.5) * tau_});
    const bool inserted =
        class_by_cell_
            .try_emplace(key_of_cell(cell_ix_[c], cell_iy_[c]), static_cast<int>(c))
            .second;
    NOBLE_EXPECTS(inserted);  // duplicate cells mean a corrupt snapshot
  }
}

GridQuantizer::CellKey GridQuantizer::key_of(const Point2& p) const {
  const auto ix = static_cast<std::int32_t>(std::floor((p.x - origin_x_) / tau_));
  const auto iy = static_cast<std::int32_t>(std::floor((p.y - origin_y_) / tau_));
  return key_of_cell(ix, iy);
}

GridQuantizer::CellKey GridQuantizer::key_of_cell(std::int32_t ix, std::int32_t iy) const {
  return (static_cast<std::int64_t>(ix) << 32) | static_cast<std::uint32_t>(iy);
}

int GridQuantizer::class_of(const Point2& p) const {
  NOBLE_EXPECTS(tau_ > 0.0);
  const auto it = class_by_cell_.find(key_of(p));
  return it == class_by_cell_.end() ? -1 : it->second;
}

int GridQuantizer::nearest_class(const Point2& p) const {
  NOBLE_EXPECTS(!centers_.empty());
  const int direct = class_of(p);
  if (direct >= 0) return direct;
  // Expanding ring search around p's cell; falls back to a linear scan if the
  // rings stay empty (pathologically sparse grids).
  const auto ix = static_cast<std::int32_t>(std::floor((p.x - origin_x_) / tau_));
  const auto iy = static_cast<std::int32_t>(std::floor((p.y - origin_y_) / tau_));
  for (std::int32_t ring = 1; ring <= 64; ++ring) {
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::int32_t dx = -ring; dx <= ring; ++dx) {
      for (std::int32_t dy = -ring; dy <= ring; ++dy) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const auto it = class_by_cell_.find(key_of_cell(ix + dx, iy + dy));
        if (it == class_by_cell_.end()) continue;
        const double d = sq_distance(centers_[static_cast<std::size_t>(it->second)], p);
        if (d < best_d) {
          best_d = d;
          best = it->second;
        }
      }
    }
    if (best >= 0) return best;
  }
  int best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centers_.size(); ++c) {
    const double d = sq_distance(centers_[c], p);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(c);
    }
  }
  return best;
}

Point2 GridQuantizer::center(int class_id) const {
  NOBLE_EXPECTS(class_id >= 0 && static_cast<std::size_t>(class_id) < centers_.size());
  return centers_[static_cast<std::size_t>(class_id)];
}

Point2 GridQuantizer::data_centroid(int class_id) const {
  NOBLE_EXPECTS(class_id >= 0 &&
                static_cast<std::size_t>(class_id) < data_centroid_.size());
  return data_centroid_[static_cast<std::size_t>(class_id)];
}

std::vector<int> GridQuantizer::neighbor_classes(const Point2& p, int ring) const {
  NOBLE_EXPECTS(ring >= 1);
  const auto ix = static_cast<std::int32_t>(std::floor((p.x - origin_x_) / tau_));
  const auto iy = static_cast<std::int32_t>(std::floor((p.y - origin_y_) / tau_));
  const int own = class_of(p);
  std::vector<int> out;
  for (std::int32_t dx = -ring; dx <= ring; ++dx) {
    for (std::int32_t dy = -ring; dy <= ring; ++dy) {
      if (dx == 0 && dy == 0) continue;
      const auto it = class_by_cell_.find(key_of_cell(ix + dx, iy + dy));
      if (it != class_by_cell_.end() && it->second != own) out.push_back(it->second);
    }
  }
  return out;
}

double GridQuantizer::residual(const Point2& p) const {
  const int cls = class_of(p);
  NOBLE_EXPECTS(cls >= 0);
  return distance(p, center(cls));
}

void MultiResolutionQuantizer::fit(const std::vector<Point2>& positions, double tau,
                                   double l) {
  NOBLE_EXPECTS(l > tau);
  fine_.fit(positions, tau);
  coarse_.fit(positions, l);
}

}  // namespace noble::geo
