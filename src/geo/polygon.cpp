#include "geo/polygon.h"

#include <limits>

#include "common/check.h"

namespace noble::geo {

Polygon::Polygon(std::vector<Point2> vertices) : vertices_(std::move(vertices)) {
  NOBLE_EXPECTS(vertices_.size() >= 3);
  bounds_ = {vertices_[0].x, vertices_[0].y, vertices_[0].x, vertices_[0].y};
  for (const auto& v : vertices_) bounds_.expand(v);
}

Polygon Polygon::rectangle(double min_x, double min_y, double max_x, double max_y) {
  NOBLE_EXPECTS(max_x > min_x && max_y > min_y);
  return Polygon({{min_x, min_y}, {max_x, min_y}, {max_x, max_y}, {min_x, max_y}});
}

bool Polygon::contains(const Point2& p) const {
  if (!bounds_.contains(p)) return false;
  // Boundary counts as inside (tolerance scaled to the polygon size).
  const double tol = 1e-9 * (1.0 + bounds_.width() + bounds_.height());
  if (boundary_distance(p) <= tol) return true;

  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2& vi = vertices_[i];
    const Point2& vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_int = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

Point2 Polygon::nearest_boundary_point(const Point2& p) const {
  double best = std::numeric_limits<double>::infinity();
  Point2 best_pt = vertices_[0];
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point2 cand = nearest_point_on_segment(vertices_[j], vertices_[i], p);
    const double d = sq_distance(cand, p);
    if (d < best) {
      best = d;
      best_pt = cand;
    }
  }
  return best_pt;
}

double Polygon::boundary_distance(const Point2& p) const {
  return distance(p, nearest_boundary_point(p));
}

double Polygon::area() const {
  double twice = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice += vertices_[j].x * vertices_[i].y - vertices_[i].x * vertices_[j].y;
  }
  return std::fabs(twice) * 0.5;
}

Point2 Polygon::centroid() const {
  double twice = 0.0, cx = 0.0, cy = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const double cross =
        vertices_[j].x * vertices_[i].y - vertices_[i].x * vertices_[j].y;
    twice += cross;
    cx += (vertices_[j].x + vertices_[i].x) * cross;
    cy += (vertices_[j].y + vertices_[i].y) * cross;
  }
  if (std::fabs(twice) < 1e-12) return vertices_[0];
  return {cx / (3.0 * twice), cy / (3.0 * twice)};
}

Point2 nearest_point_on_segment(const Point2& a, const Point2& b, const Point2& p) {
  const Point2 ab = b - a;
  const double len_sq = ab.dot(ab);
  if (len_sq < 1e-18) return a;
  double t = (p - a).dot(ab) / len_sq;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return a + ab * t;
}

}  // namespace noble::geo
