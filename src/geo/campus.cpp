#include "geo/campus.h"

#include <cmath>

#include "common/check.h"

namespace noble::geo {

namespace {

/// Rectangular ring polyline placed midway between an outer rectangle and an
/// inner hole — the canonical corridor around a courtyard.
std::vector<Point2> ring_between(const Aabb& outer, const Aabb& inner) {
  const double x0 = 0.5 * (outer.min_x + inner.min_x);
  const double x1 = 0.5 * (outer.max_x + inner.max_x);
  const double y0 = 0.5 * (outer.min_y + inner.min_y);
  const double y1 = 0.5 * (outer.max_y + inner.max_y);
  return {{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}, {x0, y0}};
}

/// Builds a closed-ring corridor graph with two cross connections.
PathGraph make_ring_corridor(const Aabb& outer, const Aabb& inner) {
  PathGraph g;
  const auto ring = ring_between(outer, inner);
  // ring has 5 points with the last repeating the first; connect as a cycle.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) ids.push_back(g.add_node(ring[i]));
  for (std::size_t i = 0; i < ids.size(); ++i)
    g.add_edge(ids[i], ids[(i + 1) % ids.size()]);
  return g;
}

/// H-shaped corridor inside a rectangle without a courtyard: two long
/// corridors plus a connecting cross corridor.
PathGraph make_h_corridor(const Aabb& box) {
  PathGraph g;
  const double y_lo = box.min_y + 0.3 * box.height();
  const double y_hi = box.min_y + 0.7 * box.height();
  const double x0 = box.min_x + 0.1 * box.width();
  const double x1 = box.max_x - 0.1 * box.width();
  const double xm = 0.5 * (box.min_x + box.max_x);
  const auto a0 = g.add_node({x0, y_lo});
  const auto a1 = g.add_node({x1, y_lo});
  const auto b0 = g.add_node({x0, y_hi});
  const auto b1 = g.add_node({x1, y_hi});
  const auto m0 = g.add_node({xm, y_lo});
  const auto m1 = g.add_node({xm, y_hi});
  g.add_edge(a0, m0);
  g.add_edge(m0, a1);
  g.add_edge(b0, m1);
  g.add_edge(m1, b1);
  g.add_edge(m0, m1);
  return g;
}

Polygon rect_poly(const Aabb& box) {
  return Polygon::rectangle(box.min_x, box.min_y, box.max_x, box.max_y);
}

void add_building_with_courtyard(IndoorWorld& world, int id, const std::string& name,
                                 const Aabb& outer, const Aabb& hole, int floors) {
  Building b(id, name, rect_poly(outer), floors);
  b.add_hole(rect_poly(hole));
  world.plan.add_building(std::move(b));
  for (int f = 0; f < floors; ++f) {
    world.corridors.push_back({id, f, make_ring_corridor(outer, hole)});
  }
}

void add_building_plain(IndoorWorld& world, int id, const std::string& name,
                        const Aabb& outer, int floors) {
  world.plan.add_building(Building(id, name, rect_poly(outer), floors));
  for (int f = 0; f < floors; ++f) {
    world.corridors.push_back({id, f, make_h_corridor(outer)});
  }
}

}  // namespace

const IndoorWorld::Corridor* IndoorWorld::corridor(int building, int floor) const {
  for (const auto& c : corridors) {
    if (c.building == building && c.floor == floor) return &c;
  }
  return nullptr;
}

IndoorWorld make_uji_like_campus() {
  IndoorWorld world;
  // Frame: 397 m x 273 m (paper §I). Three elongated buildings; the top-left
  // one has the courtyard explicitly called out in Fig. 1/Fig. 4 discussion,
  // the others get courtyards as well (visible in the satellite view).
  add_building_with_courtyard(world, 0, "TI",
                              {20.0, 150.0, 175.0, 253.0},   // outer
                              {55.0, 180.0, 140.0, 223.0},   // courtyard hole
                              4);
  add_building_with_courtyard(world, 1, "TD",
                              {205.0, 120.0, 377.0, 215.0},
                              {240.0, 148.0, 342.0, 187.0},
                              4);
  add_building_with_courtyard(world, 2, "TC",
                              {110.0, 20.0, 330.0, 105.0},
                              {150.0, 45.0, 290.0, 80.0},
                              4);
  return world;
}

IndoorWorld make_ipin_like_building() {
  IndoorWorld world;
  add_building_plain(world, 0, "IPIN", {0.0, 0.0, 62.0, 34.0}, 3);
  return world;
}

OutdoorWorld make_outdoor_track(std::size_t num_reference_points) {
  NOBLE_EXPECTS(num_reference_points >= 4);
  OutdoorWorld world;
  world.bounds = {0.0, 0.0, 160.0, 60.0};
  PathGraph& g = world.walkways;

  // Perimeter loop inset 5 m from the bounds plus two cross walkways —
  // a typical campus block (§V-A: 160 m x 60 m outdoor space).
  const double x0 = 5.0, x1 = 155.0, y0 = 5.0, y1 = 55.0;
  const auto c0 = g.add_node({x0, y0});
  const auto c1 = g.add_node({x1, y0});
  const auto c2 = g.add_node({x1, y1});
  const auto c3 = g.add_node({x0, y1});
  const auto m0 = g.add_node({55.0, y0});
  const auto m1 = g.add_node({55.0, y1});
  const auto n0 = g.add_node({105.0, y0});
  const auto n1 = g.add_node({105.0, y1});
  g.add_edge(c0, m0);
  g.add_edge(m0, n0);
  g.add_edge(n0, c1);
  g.add_edge(c1, c2);
  g.add_edge(c2, n1);
  g.add_edge(n1, m1);
  g.add_edge(m1, c3);
  g.add_edge(c3, c0);
  g.add_edge(m0, m1);
  g.add_edge(n0, n1);

  // Reference points: evenly spaced along all edges, then truncated/strided
  // to the requested count.
  const auto dense = g.sample_along_edges(2.0);
  NOBLE_CHECK(dense.size() >= num_reference_points);
  const double stride =
      static_cast<double>(dense.size()) / static_cast<double>(num_reference_points);
  for (std::size_t i = 0; i < num_reference_points; ++i) {
    world.reference_points.push_back(dense[static_cast<std::size_t>(i * stride)]);
  }
  return world;
}

}  // namespace noble::geo
